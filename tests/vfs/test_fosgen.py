"""Tests for the FoSgen automatic instrumentation analogue."""

import pytest

from repro.core.profiler import Profiler
from repro.sim.process import CpuBurst
from repro.sim.scheduler import Kernel
from repro.vfs.file import File
from repro.vfs.fosgen import (OPERATION_VECTOR, discover_operations,
                              instrument_filesystem,
                              uninstrument_filesystem)
from repro.vfs.inode import InodeTable, S_IFREG
from repro.vfs.instrument import FsInstrument
from repro.vfs.vfs import FileSystem, Vfs


class TinyFs(FileSystem):
    """Implements a subset of the operation vector."""

    name = "tiny"

    def __init__(self, kernel):
        super().__init__()
        self.kernel = kernel

    def file_read(self, proc, file, size):
        yield CpuBurst(500)
        return size

    def llseek(self, proc, file, offset, whence):
        yield CpuBurst(100)
        file.pos = offset
        return offset


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


@pytest.fixture
def setup(kernel):
    fs = TinyFs(kernel)
    profiler = Profiler(name="fosgen", clock=lambda: kernel.engine.now)
    instrument = FsInstrument(kernel, profiler=profiler)
    vfs = Vfs(kernel, fs)  # uninstrumented dispatch
    return fs, instrument, profiler, vfs


class TestDiscovery:
    def test_finds_implemented_operations(self, setup):
        fs, _, _, _ = setup
        ops = discover_operations(fs)
        assert "file_read" in ops
        assert "llseek" in ops
        assert "readdir" not in ops  # inherited abstract stub

    def test_write_super_default_counts(self, setup):
        # write_super has a real (no-op) default the paper would wrap.
        fs, _, _, _ = setup
        assert "write_super" in discover_operations(fs)

    def test_ext2_implements_whole_vector(self, kernel):
        from repro.system import System
        system = System.build(with_timer=False)
        ops = discover_operations(system.fs)
        assert set(OPERATION_VECTOR) <= set(ops) | {"write_super"}


class TestInstrumentation:
    def run_ops(self, kernel, fs):
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from fs.file_read(proc, f, 100)
            yield from fs.llseek(proc, f, 5, 0)

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])

    def test_wrapped_operations_are_profiled(self, kernel, setup):
        fs, instrument, profiler, _ = setup
        wrapped = instrument_filesystem(fs, instrument)
        assert "file_read" in wrapped and "llseek" in wrapped
        self.run_ops(kernel, fs)
        pset = profiler.profile_set()
        assert pset["file_read"].total_ops == 1
        assert pset["llseek"].total_ops == 1

    def test_idempotent(self, kernel, setup):
        fs, instrument, profiler, _ = setup
        instrument_filesystem(fs, instrument)
        again = instrument_filesystem(fs, instrument)
        assert again == []
        self.run_ops(kernel, fs)
        assert profiler.profile_set()["file_read"].total_ops == 1

    def test_results_unchanged_by_wrapping(self, kernel, setup):
        fs, instrument, _, _ = setup
        instrument_filesystem(fs, instrument)
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            n = yield from fs.file_read(proc, f, 123)
            return n

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])
        assert p.exit_value == 123

    def test_per_instance_instrumentation(self, kernel):
        # Two mounts of the same class: only one instrumented.
        fs_a = TinyFs(kernel)
        fs_b = TinyFs(kernel)
        profiler = Profiler(clock=lambda: kernel.engine.now)
        instrument = FsInstrument(kernel, profiler=profiler)
        instrument_filesystem(fs_a, instrument)
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from fs_a.file_read(proc, f, 1)
            yield from fs_b.file_read(proc, f, 1)

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])
        assert profiler.profile_set()["file_read"].total_ops == 1

    def test_uninstrument_restores(self, kernel, setup):
        fs, instrument, profiler, _ = setup
        instrument_filesystem(fs, instrument)
        restored = uninstrument_filesystem(fs)
        assert "file_read" in restored
        self.run_ops(kernel, fs)
        assert profiler.profile_set().total_ops() == 0

    def test_uninstrument_without_instrumentation(self, setup):
        fs, _, _, _ = setup
        assert uninstrument_filesystem(fs) == []

"""Tests for the page cache."""

import pytest

from repro.disk.device import Disk
from repro.sim.scheduler import Kernel
from repro.vfs.pagecache import PageCache


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


@pytest.fixture
def disk(kernel):
    return Disk(kernel)


@pytest.fixture
def cache(kernel, disk):
    pc = PageCache(kernel, capacity_pages=4)
    pc.attach_disk(disk)
    return pc


class TestLookup:
    def test_miss_then_resident_hit(self, kernel, disk, cache):
        assert cache.lookup(1, 0) is None
        request = disk.submit(100)
        page = cache.install_inflight(1, 0, request)
        assert not page.resident
        kernel.run(max_events=100)
        assert page.resident
        assert cache.lookup(1, 0) is page
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_does_not_affect_stats(self, cache):
        cache.peek(1, 0)
        assert cache.misses == 0

    def test_install_resident_direct(self, cache):
        page = cache.install_resident(2, 3)
        assert page.resident
        assert cache.lookup(2, 3) is page


class TestInflight:
    def test_waiters_woken_on_fill(self, kernel, disk, cache):
        request = disk.submit(100)
        page = cache.install_inflight(1, 0, request)
        woken = []

        def waiter(proc):
            p = yield from cache.wait(page)
            woken.append(p.resident)

        proc = kernel.spawn(waiter, "w")
        kernel.run_until_done([proc])
        assert woken == [True]

    def test_wait_on_resident_returns_immediately(self, kernel, cache):
        page = cache.install_resident(1, 0)

        def waiter(proc):
            p = yield from cache.wait(page)
            return p

        proc = kernel.spawn(waiter, "w")
        kernel.run_until_done([proc])
        assert proc.exit_value is page
        assert proc.wait_time == 0

    def test_duplicate_inflight_returns_existing(self, disk, cache):
        r1 = disk.submit(100)
        page1 = cache.install_inflight(1, 0, r1)
        r2 = disk.submit(101)
        page2 = cache.install_inflight(1, 0, r2)
        assert page1 is page2

    def test_unrelated_disk_completion_ignored(self, kernel, disk, cache):
        disk.submit(500)  # no page attached
        kernel.run(max_events=100)  # must not blow up


class TestEviction:
    def test_lru_eviction_of_clean_pages(self, cache):
        for i in range(4):
            cache.install_resident(1, i)
        cache.lookup(1, 0)  # page 0 recently used
        cache.install_resident(1, 99)
        assert cache.evictions == 1
        assert cache.peek(1, 1) is None  # LRU victim
        assert cache.peek(1, 0) is not None

    def test_dirty_pages_not_evicted(self, cache):
        for i in range(4):
            page = cache.install_resident(1, i)
            page.dirty = True
        cache.install_resident(1, 99)  # overcommit allowed
        assert cache.evictions == 0
        assert len(cache) == 5

    def test_inflight_pages_not_evicted(self, disk, cache):
        for i in range(4):
            cache.install_inflight(1, i, disk.submit(i))
        cache.install_resident(1, 99)
        assert cache.evictions == 0


class TestDirtyTracking:
    def test_mark_and_clean(self, cache):
        page = cache.mark_dirty(3, 1)
        assert page.dirty
        assert cache.dirty_pages() == [page]
        cache.clean(page)
        assert cache.dirty_pages() == []

    def test_hit_rate(self, cache):
        cache.lookup(1, 0)
        cache.install_resident(1, 0)
        cache.lookup(1, 0)
        assert cache.hit_rate() == pytest.approx(0.5)
        assert cache.resident_count() == 1

    def test_capacity_validation(self, kernel):
        with pytest.raises(ValueError):
            PageCache(kernel, capacity_pages=0)

"""Tests for inodes and the inode table."""

import pytest

from repro.sim.scheduler import Kernel
from repro.vfs.inode import (ENTRIES_PER_PAGE, Inode, InodeTable, S_IFDIR,
                             S_IFREG)


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


@pytest.fixture
def table(kernel):
    return InodeTable(kernel)


class TestInodeTable:
    def test_allocation_starts_at_two(self, table):
        inode = table.allocate(S_IFDIR)
        assert inode.ino == 2
        assert table.get(2) is inode

    def test_sequential_inos(self, table):
        a = table.allocate(S_IFREG)
        b = table.allocate(S_IFREG)
        assert b.ino == a.ino + 1
        assert len(table) == 2

    def test_dirty_inode_tracking(self, table, kernel):
        a = table.allocate(S_IFREG)
        table.allocate(S_IFREG)
        a.touch_atime(kernel.now)
        assert table.dirty_inodes() == [a]


class TestInode:
    def test_kind_validation(self, kernel):
        with pytest.raises(ValueError):
            Inode(kernel, 5, "socket")

    def test_file_page_count(self, table):
        f = table.allocate(S_IFREG)
        f.size = 4096 * 2 + 1
        assert f.num_pages() == 3
        f.size = 0
        assert f.num_pages() == 0

    def test_dir_page_count(self, table):
        d = table.allocate(S_IFDIR)
        for i in range(ENTRIES_PER_PAGE + 1):
            d.add_entry(f"f{i}", 100 + i)
        assert d.num_pages() == 2
        assert d.size == ENTRIES_PER_PAGE + 1

    def test_dir_page_entries_slicing(self, table):
        d = table.allocate(S_IFDIR)
        for i in range(ENTRIES_PER_PAGE + 5):
            d.add_entry(f"f{i}", 100 + i)
        page1 = d.dir_page_entries(1)
        assert len(page1) == 5
        assert page1[0].name == f"f{ENTRIES_PER_PAGE}"

    def test_entries_only_on_directories(self, table):
        f = table.allocate(S_IFREG)
        with pytest.raises(ValueError):
            f.add_entry("x", 1)
        with pytest.raises(ValueError):
            f.lookup_entry("x")
        with pytest.raises(ValueError):
            f.dir_page_entries(0)

    def test_lookup_entry(self, table):
        d = table.allocate(S_IFDIR)
        d.add_entry("hello", 42)
        assert d.lookup_entry("hello").ino == 42
        assert d.lookup_entry("nope") is None

    def test_block_for_range_checked(self, table):
        f = table.allocate(S_IFREG)
        f.blocks = [10, 11]
        assert f.block_for(1) == 11
        with pytest.raises(ValueError):
            f.block_for(2)

    def test_touch_atime_dirties(self, table, kernel):
        f = table.allocate(S_IFREG)
        assert not f.dirty
        f.touch_atime(123.0)
        assert f.dirty
        assert f.atime == 123.0

    def test_each_inode_has_own_i_sem(self, table):
        a = table.allocate(S_IFREG)
        b = table.allocate(S_IFREG)
        assert a.i_sem is not b.i_sem
        assert a.i_sem.count == 1

"""Tests for generic_file_llseek (Section 6.1)."""

import pytest

from repro.sim.scheduler import Kernel
from repro.vfs.file import File, SEEK_CUR, SEEK_END, SEEK_SET
from repro.vfs.inode import InodeTable, S_IFDIR, S_IFREG
from repro.vfs.llseek import generic_file_llseek, generic_file_llseek_patched


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


@pytest.fixture
def table(kernel):
    return InodeTable(kernel)


def run_seek(kernel, fn, file, offset, whence=SEEK_SET):
    def body(proc):
        result = yield from fn(kernel, proc, file, offset, whence)
        return result

    p = kernel.spawn(body, "seeker")
    kernel.run_until_done([p])
    return p


class TestSemantics:
    @pytest.mark.parametrize("fn", [generic_file_llseek,
                                    generic_file_llseek_patched])
    def test_seek_set(self, kernel, table, fn):
        f = File(table.allocate(S_IFREG))
        p = run_seek(kernel, fn, f, 1234)
        assert p.exit_value == 1234
        assert f.pos == 1234

    @pytest.mark.parametrize("fn", [generic_file_llseek,
                                    generic_file_llseek_patched])
    def test_seek_cur_and_end(self, kernel, table, fn):
        inode = table.allocate(S_IFREG)
        inode.size = 1000
        f = File(inode)
        f.pos = 100
        p = run_seek(kernel, fn, f, 50, SEEK_CUR)
        assert p.exit_value == 150
        p = run_seek(kernel, fn, f, -10, SEEK_END)
        assert p.exit_value == 990

    def test_negative_position_rejected(self, kernel, table):
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from generic_file_llseek(kernel, proc, f, -5)

        kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            kernel.run(max_events=100)

    def test_bad_whence_rejected(self, kernel, table):
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from generic_file_llseek(kernel, proc, f, 0, 9)

        kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            kernel.run(max_events=100)

    def test_closed_file_rejected(self, kernel, table):
        f = File(table.allocate(S_IFREG))
        f.closed = True

        def body(proc):
            yield from generic_file_llseek(kernel, proc, f, 0)

        kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            kernel.run(max_events=100)


class TestLocking:
    def test_unpatched_takes_i_sem(self, kernel, table):
        inode = table.allocate(S_IFREG)
        f = File(inode)
        run_seek(kernel, generic_file_llseek, f, 10)
        assert inode.i_sem.acquisitions == 1
        assert inode.i_sem.count == 1  # released again

    def test_patched_skips_i_sem_for_files(self, kernel, table):
        inode = table.allocate(S_IFREG)
        f = File(inode)
        run_seek(kernel, generic_file_llseek_patched, f, 10)
        assert inode.i_sem.acquisitions == 0

    def test_patched_still_locks_directories(self, kernel, table):
        inode = table.allocate(S_IFDIR)
        f = File(inode)
        run_seek(kernel, generic_file_llseek_patched, f, 1)
        assert inode.i_sem.acquisitions == 1

    def test_patched_is_much_cheaper(self, kernel, table):
        # The paper's fix: ~400 -> ~120 cycles, a ~70% reduction.
        inode = table.allocate(S_IFREG)
        f = File(inode)
        p1 = run_seek(kernel, generic_file_llseek, f, 10)
        p2 = run_seek(kernel, generic_file_llseek_patched, f, 20)
        assert p2.cpu_time < p1.cpu_time * 0.45

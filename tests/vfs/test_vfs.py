"""Tests for VFS dispatch, File objects, and FS instrumentation."""

import pytest

from repro.core.profiler import Profiler
from repro.sim.process import CpuBurst
from repro.sim.scheduler import Kernel
from repro.vfs.file import File, O_DIRECT
from repro.vfs.inode import InodeTable, S_IFREG
from repro.vfs.instrument import FsInstrument
from repro.vfs.vfs import FileSystem, Vfs


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


class EchoFs(FileSystem):
    """Minimal FS: every operation burns a fixed cost and returns."""

    name = "echo"

    def __init__(self, kernel, cost=1000):
        super().__init__()
        self.kernel = kernel
        self.cost = cost
        self.calls = []

    def file_read(self, proc, file, size):
        self.calls.append(("read", size))
        yield CpuBurst(self.cost)
        return size

    def llseek(self, proc, file, offset, whence):
        self.calls.append(("llseek", offset))
        yield CpuBurst(self.cost)
        file.pos = offset
        return offset

    def readdir(self, proc, file):
        self.calls.append(("readdir", file.pos))
        yield CpuBurst(self.cost)
        return []

    def fsync(self, proc, file):
        self.calls.append(("fsync", 0))
        yield CpuBurst(self.cost)
        return 0


class TestFile:
    def test_direct_flag(self, kernel):
        table = InodeTable(kernel)
        inode = table.allocate(S_IFREG)
        assert not File(inode).direct
        assert File(inode, flags=O_DIRECT).direct

    def test_require_open(self, kernel):
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))
        f.require_open()
        f.closed = True
        with pytest.raises(ValueError):
            f.require_open()


class TestVfsDispatch:
    def make_vfs(self, kernel, variant="full"):
        profiler = Profiler(name="fs", clock=lambda: kernel.engine.now)
        fsprof = FsInstrument(kernel, profiler=profiler, variant=variant)
        fs = EchoFs(kernel)
        vfs = Vfs(kernel, fs, fsprof=fsprof)
        return vfs, fs, profiler

    def test_operations_reach_fs(self, kernel):
        vfs, fs, _ = self.make_vfs(kernel)
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            n = yield from vfs.read(proc, f, 100)
            yield from vfs.llseek(proc, f, 5)
            yield from vfs.readdir(proc, f)
            yield from vfs.fsync(proc, f)
            yield from vfs.close(proc, f)
            return n

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])
        assert p.exit_value == 100
        assert [c[0] for c in fs.calls] == ["read", "llseek",
                                            "readdir", "fsync"]
        assert f.closed

    def test_each_operation_profiled_at_fs_level(self, kernel):
        vfs, _, profiler = self.make_vfs(kernel)
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from vfs.read(proc, f, 100)
            yield from vfs.read(proc, f, 100)
            yield from vfs.llseek(proc, f, 0)

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])
        pset = profiler.profile_set()
        assert pset["read"].total_ops == 2
        assert pset["llseek"].total_ops == 1
        assert not pset.verify_checksums()

    def test_closed_file_rejected_at_vfs(self, kernel):
        vfs, _, _ = self.make_vfs(kernel)
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))
        f.closed = True

        def body(proc):
            yield from vfs.read(proc, f, 10)

        kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            kernel.run(max_events=200)

    def test_instrument_off_records_nothing(self, kernel):
        vfs, _, profiler = self.make_vfs(kernel, variant="off")
        table = InodeTable(kernel)
        f = File(table.allocate(S_IFREG))

        def body(proc):
            yield from vfs.read(proc, f, 10)

        p = kernel.spawn(body, "p")
        kernel.run_until_done([p])
        assert profiler.profile_set().total_ops() == 0

    def test_instrumentation_overhead_ordering(self, kernel):
        times = {}
        for variant in FsInstrument.VARIANTS:
            k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
            vfs, _, _ = self.make_vfs(k)
            vfs.fsprof.variant = variant
            table = InodeTable(k)
            f = File(table.allocate(S_IFREG))

            def body(proc):
                for _ in range(100):
                    yield from vfs.read(proc, f, 10)

            p = k.spawn(body, "p")
            k.run_until_done([p])
            times[variant] = p.cpu_time
        assert times["off"] < times["full"]
        assert times["empty"] < times["full"]

    def test_default_fsprof_is_off(self, kernel):
        fs = EchoFs(kernel)
        vfs = Vfs(kernel, fs)
        assert vfs.fsprof.variant == "off"

    def test_fs_bound_to_vfs(self, kernel):
        fs = EchoFs(kernel)
        vfs = Vfs(kernel, fs)
        assert fs.vfs is vfs


class TestFileSystemBase:
    def test_base_operations_unimplemented(self, kernel):
        fs = FileSystem()
        with pytest.raises(NotImplementedError):
            next(fs.file_read(None, None, 0))
        with pytest.raises(NotImplementedError):
            next(fs.readdir(None, None))

    def test_write_super_default_noop(self, kernel):
        fs = FileSystem()

        def body(proc):
            result = yield from fs.write_super(proc)
            return result

        k = kernel
        p = k.spawn(body, "p")
        k.run_until_done([p])
        assert p.exit_value is None

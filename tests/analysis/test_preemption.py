"""Tests for the Equation 3 preemption model."""

import math

import pytest

from repro.analysis.preemption import (expected_preempted_requests,
                                       forced_preemption_probability,
                                       predict_preemption, quantum_bucket)
from repro.core.buckets import LatencyBuckets


class TestEquation3:
    def test_papers_example_is_vanishingly_small(self):
        # The paper reports ~2.3e-280 for Y=0.01, t_cpu = t_period/2 =
        # 2^10, Q = 2^26.  Evaluating Eq. 3 exactly as printed gives
        # 0.5 * 0.99^(2^15) ~ 5.6e-144 (their figure evidently divides
        # Q by t_cpu rather than t_period).  Either way the conclusion
        # stands: forcible preemption is vanishingly improbable.
        pr = forced_preemption_probability(
            t_cpu=2 ** 10, t_period=2 ** 11, quantum=2 ** 26,
            yield_probability=0.01)
        assert pr < 1e-140
        # With their alternate exponent (Q / t_cpu) the number matches:
        pr_alt = forced_preemption_probability(
            t_cpu=2 ** 10, t_period=2 ** 10, quantum=2 ** 26,
            yield_probability=0.01)
        assert pr_alt < 1e-280

    def test_zero_yield_gives_simple_ratio(self):
        pr = forced_preemption_probability(
            t_cpu=500, t_period=1000, quantum=10_000,
            yield_probability=0.0)
        assert pr == pytest.approx(0.5)

    def test_yield_one_never_preempts(self):
        pr = forced_preemption_probability(
            t_cpu=500, t_period=1000, quantum=10_000,
            yield_probability=1.0)
        assert pr == 0.0

    def test_declines_with_yield_probability(self):
        values = [forced_preemption_probability(500, 1000, 100_000, y)
                  for y in (0.0, 0.001, 0.01)]
        assert values[0] > values[1] > values[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            forced_preemption_probability(-1, 1000, 100, 0.0)
        with pytest.raises(ValueError):
            forced_preemption_probability(10, 0, 100, 0.0)
        with pytest.raises(ValueError):
            forced_preemption_probability(10, 1000, 100, 1.5)
        with pytest.raises(ValueError):
            forced_preemption_probability(2000, 1000, 100, 0.0)


class TestQuantumBucket:
    def test_papers_quantum_is_bucket_26(self):
        # 58 ms at 1.7 GHz = 9.86e7 cycles -> bucket 26.
        assert quantum_bucket(58e-3 * 1.7e9) == 26


class TestExpectedPreempted:
    def test_matches_hand_computation(self):
        hist = LatencyBuckets.from_counts({8: 1000})
        quantum = 2 ** 20
        # t_cpu(8) = 1.5 * 256 = 384; expected = 1000 * 384 / 2^20.
        expected = expected_preempted_requests(hist, quantum)
        assert expected == pytest.approx(1000 * 384 / 2 ** 20)

    def test_quantum_bucket_excluded(self):
        hist = LatencyBuckets.from_counts({20: 50, 8: 100})
        expected = expected_preempted_requests(hist, 2 ** 20)
        only_low = expected_preempted_requests(
            LatencyBuckets.from_counts({8: 100}), 2 ** 20)
        assert expected == pytest.approx(only_low)


class TestPrediction:
    def test_prediction_compares_theory_and_measurement(self):
        quantum = 2 ** 20
        counts = {8: 1_000_000}
        expected = 1_000_000 * 384 / quantum  # ~366
        counts[20] = int(expected)
        hist = LatencyBuckets.from_counts(counts)
        pred = predict_preemption(hist, quantum)
        assert pred.quantum_bucket == 20
        assert pred.measured == int(expected)
        assert pred.within(0.33)

    def test_relative_error_infinite_when_unexpected(self):
        hist = LatencyBuckets.from_counts({20: 5})
        pred = predict_preemption(hist, 2 ** 20)
        assert pred.expected == 0
        assert math.isinf(pred.relative_error)

    def test_zero_measured_zero_expected(self):
        hist = LatencyBuckets()
        pred = predict_preemption(hist, 2 ** 20)
        assert pred.relative_error == 0.0
        assert pred.within(0.33)

"""Tests for the synthetic Section 5.3 accuracy study."""

import pytest

from repro.analysis.groundtruth import (PairGenerator, evaluate_methods)


class TestPairGenerator:
    def test_deterministic_given_seed(self):
        a = PairGenerator(seed=7, ops=2000).pairs(10)
        b = PairGenerator(seed=7, ops=2000).pairs(10)
        for pa, pb in zip(a, b):
            assert pa.important == pb.important
            assert pa.a.counts() == pb.a.counts()
            assert pa.b.counts() == pb.b.counts()

    def test_mixed_labels(self):
        pairs = PairGenerator(seed=1, ops=2000).pairs(60)
        labels = [p.important for p in pairs]
        assert 10 < sum(labels) < 50

    def test_change_kinds_recorded(self):
        pairs = PairGenerator(seed=2, ops=2000).pairs(80)
        kinds = {p.change for p in pairs}
        assert "noise" in kinds
        assert kinds & {"new_peak", "moved_peak", "mass_shift"}

    def test_unimportant_pairs_same_shape(self):
        pairs = [p for p in PairGenerator(seed=3, ops=5000).pairs(40)
                 if not p.important]
        for p in pairs:
            # Same populated region (same population resampled).
            assert abs(p.a.span()[0] - p.b.span()[0]) <= 3

    def test_count_validation(self):
        with pytest.raises(ValueError):
            PairGenerator().pairs(0)


class TestEvaluateMethods:
    def test_emd_beats_chi_squared(self):
        gen = PairGenerator(seed=2006, ops=8000)
        calibration = gen.pairs(120)
        evaluation = gen.pairs(250)
        results = evaluate_methods(evaluation, calibration,
                                   methods=["emd", "chi_squared"])
        assert results["emd"].false_rate <= \
            results["chi_squared"].false_rate

    def test_rates_reasonably_low(self):
        gen = PairGenerator(seed=2006, ops=8000)
        calibration = gen.pairs(120)
        evaluation = gen.pairs(250)
        results = evaluate_methods(evaluation, calibration,
                                   methods=["emd"])
        assert results["emd"].false_rate < 0.15

    def test_accuracy_accounting(self):
        gen = PairGenerator(seed=5, ops=3000)
        calibration = gen.pairs(50)
        evaluation = gen.pairs(50)
        results = evaluate_methods(evaluation, calibration,
                                   methods=["total_ops"])
        acc = results["total_ops"]
        assert acc.total == 50
        assert 0 <= acc.false_positives + acc.false_negatives <= 50
        assert acc.false_rate == pytest.approx(
            (acc.false_positives + acc.false_negatives) / 50)

"""Tests for change-point detection over sampled profiles."""

import pytest

from repro.analysis.anomaly import (change_points, distance_series)
from repro.core.sampling import SampledProfiler
from repro.sim.rng import SimRandom


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_series(segments, ops_per_segment=5000, shift_at=None,
                seed=7):
    """Segments of a stable bimodal distribution, optionally shifting
    one mode rightward from segment *shift_at* on."""
    clock = FakeClock()
    sp = SampledProfiler(clock, interval=1000)
    rng = SimRandom(seed)
    for segment in range(segments):
        start = segment * 1000
        for _ in range(ops_per_segment):
            if rng.chance(0.7):
                latency = rng.jitter(200, sigma=0.3)
            else:
                slow = 3e6
                if shift_at is not None and segment >= shift_at:
                    slow = 6e7  # the disk got slower
                latency = rng.jitter(slow, sigma=0.3)
            sp.record("read", start=start, latency=latency)
    return sp.series()


class TestDistanceSeries:
    def test_first_entry_none(self):
        series = make_series(4)
        distances = distance_series(series, "read")
        assert distances[0] is None
        assert len(distances) == 4

    def test_stable_series_low_distances(self):
        # EMD sampling noise between far-apart modes is ~14 buckets x
        # binomial mass noise; at 5000 samples that stays well below
        # the ~1.3 a real mode shift produces.
        series = make_series(6)
        distances = distance_series(series, "read")
        assert all(d < 0.35 for d in distances[1:])

    def test_shift_produces_spike(self):
        series = make_series(6, shift_at=3)
        distances = distance_series(series, "read")
        spike = distances[3]
        others = [d for i, d in enumerate(distances[1:], start=1)
                  if i != 3]
        assert spike > 3 * max(others)
        assert spike > 1.0  # ~4.3 buckets x 0.3 mass

    def test_sparse_segments_skipped(self):
        series = make_series(4, ops_per_segment=3)
        distances = distance_series(series, "read", min_ops=10)
        assert all(d is None for d in distances)

    def test_missing_operation(self):
        series = make_series(3)
        assert distance_series(series, "nope") == [None, None, None]


class TestChangePoints:
    def test_detects_the_shift_segment(self):
        series = make_series(8, shift_at=5)
        points = change_points(series, "read")
        assert [p.segment for p in points] == [5]
        assert "segment 5" in points[0].describe()

    def test_stable_series_no_points(self):
        series = make_series(8)
        assert change_points(series, "read") == []

    def test_explicit_threshold(self):
        series = make_series(8, shift_at=5)
        none = change_points(series, "read", threshold=1e9)
        assert none == []
        all_segments = change_points(series, "read", threshold=0.0)
        assert len(all_segments) == 7  # every comparable segment

    def test_empty_series(self):
        clock = FakeClock()
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", 0, 100)
        assert change_points(sp.series(), "other") == []

    def test_sensitivity(self):
        series = make_series(8, shift_at=5)
        loose = change_points(series, "read", sensitivity=2.0)
        tight = change_points(series, "read", sensitivity=50.0)
        assert len(loose) >= len(tight)

"""Tests for the repetitive-refinement investigation helper."""

import pytest

from repro.analysis.investigate import Investigation
from repro.core.profileset import ProfileSet
from repro.system import System
from repro.workloads import RandomReadConfig, run_random_read


def synthetic_sets():
    before = ProfileSet(name="before")
    after = ProfileSet(name="after")
    for _ in range(1000):
        before.add("read", 1_000)
        after.add("read", 1_000)
    for _ in range(300):
        after.add("read", 7e6)  # a new ~4ms peak: disk rotation-ish
    for _ in range(500):
        before.add("write", 2_000)
        after.add("write", 2_000)
    return before, after


class TestSyntheticInvestigation:
    def test_flags_changed_operation_only(self):
        before, after = synthetic_sets()
        inv = Investigation(before, after)
        findings = inv.findings()
        assert [f.operation for f in findings] == ["read"]

    def test_hypotheses_name_characteristic_times(self):
        before, after = synthetic_sets()
        findings = Investigation(before, after).findings()
        hypotheses = findings[0].hypotheses
        assert hypotheses
        assert any("disk_rotation" in h or "timer_interrupt" in h
                   for h in hypotheses)

    def test_report_contains_diff(self):
        before, after = synthetic_sets()
        text = Investigation(before, after).report()
        assert "read" in text
        assert "+300" in text

    def test_no_change_message(self):
        before, _ = synthetic_sets()
        inv = Investigation(before, before)
        assert "No interesting differences" in inv.report()

    def test_limit(self):
        before, after = synthetic_sets()
        for _ in range(200):
            after.add("write", 9e6)
        inv = Investigation(before, after)
        assert len(inv.findings(limit=1)) == 1


class TestEndToEndInvestigation:
    def test_llseek_patch_investigation(self):
        # The Section 6.1 investigation as three lambdas.
        def make_system():
            return System.build(num_cpus=2, with_timer=False, seed=4)

        def workload(system):
            run_random_read(system, RandomReadConfig(processes=2,
                                                     iterations=400))

        def apply_patch(system):
            system.fs.patched_llseek = True

        inv = Investigation.run(make_system, workload, apply_patch)
        findings = inv.findings()
        assert findings
        assert findings[0].operation == "llseek"
        # The patched condition LOST the slow peak: the diff shows
        # negative deltas in the contended buckets.
        assert "-" in findings[0].diff

"""Tests for characteristic-time peak attribution."""

import pytest

from repro.analysis.priorknowledge import (PAPER_TIMES, CharacteristicTime,
                                           CharacteristicTimes)
from repro.core.buckets import LatencyBuckets


class TestCharacteristicTime:
    def test_cycles_conversion(self):
        t = CharacteristicTime("rotation", 4e-3)
        assert t.cycles(hz=1.7e9) == pytest.approx(6.8e6)

    def test_bucket_placement(self):
        t = CharacteristicTime("rotation", 4e-3)
        assert t.bucket() == 22  # 6.8e6 cycles -> bucket 22


class TestCharacteristicTimes:
    def test_paper_defaults_loaded(self):
        table = CharacteristicTimes()
        assert "full_seek" in table.names()
        assert "scheduling_quantum" in table.names()

    def test_papers_quantum_in_bucket_26(self):
        table = CharacteristicTimes()
        assert table.bucket_of("scheduling_quantum") == 26

    def test_add_and_get(self):
        table = CharacteristicTimes(times=[])
        table.add("my_event", 1e-3, "something periodic")
        assert table.get("my_event").seconds == 1e-3

    def test_add_rejects_nonpositive(self):
        table = CharacteristicTimes()
        with pytest.raises(ValueError):
            table.add("bad", 0.0)

    def test_candidates_nearest_first(self):
        table = CharacteristicTimes()
        rotation_bucket = table.bucket_of("disk_rotation")
        names = [t.name for t in table.candidates(rotation_bucket,
                                                  tolerance=1)]
        assert names[0] in ("disk_rotation", "timer_interrupt")

    def test_candidates_empty_far_away(self):
        table = CharacteristicTimes()
        assert table.candidates(0, tolerance=0) == []

    def test_attribute_maps_peaks_to_activities(self):
        table = CharacteristicTimes()
        # A peak at the disk-rotation bucket and one at bucket 6.
        hist = LatencyBuckets.from_counts({6: 1000, 22: 500})
        attribution = table.attribute(hist, tolerance=1)
        assert set(attribution) == {6, 22}
        assert "disk_rotation" in attribution[22]
        assert attribution[6] == []  # nothing characteristic that fast

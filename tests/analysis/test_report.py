"""Tests for profile rendering and consistency checks."""

import pytest

from repro.analysis.report import (ConsistencyError, check_consistency,
                                   gnuplot_data, render_profile,
                                   render_profile_set, render_sampled)
from repro.core.profile import Profile
from repro.core.profileset import ProfileSet
from repro.core.sampling import SampledProfiler


class TestRenderProfile:
    def test_contains_header_and_axis(self):
        prof = Profile.from_latencies("read", [100, 100, 100_000])
        text = render_profile(prof)
        assert text.startswith("READ")
        assert "bucket" in text
        assert "#" in text

    def test_empty_profile(self):
        text = render_profile(Profile("empty_op"))
        assert "<empty>" in text

    def test_bucket_window(self):
        prof = Profile.from_latencies("x", [100, 1e9])
        text = render_profile(prof, first=5, last=10)
        # Bars for the 1e9 sample (bucket 29) excluded by the window.
        assert text.count("#") == 1


class TestRenderProfileSet:
    def test_sorted_by_latency_and_checked(self):
        pset = ProfileSet(name="demo")
        pset.add("cheap", 10)
        for _ in range(10):
            pset.add("dear", 1_000_000)
        text = render_profile_set(pset)
        assert text.index("DEAR") < text.index("CHEAP")

    def test_checksum_failure_raises(self):
        pset = ProfileSet()
        pset.add("x", 100)
        pset["x"].histogram.total_ops += 1
        with pytest.raises(ConsistencyError):
            render_profile_set(pset)

    def test_top_limits_output(self):
        pset = ProfileSet()
        pset.add("a", 100)
        pset.add("b", 10)
        text = render_profile_set(pset, top=1)
        assert "A" in text and "B  (" not in text


class TestCheckConsistency:
    def test_passes_on_clean_set(self):
        pset = ProfileSet()
        pset.add("x", 5)
        check_consistency(pset)  # no raise

    def test_names_offending_operation(self):
        pset = ProfileSet()
        pset.add("bad_op", 5)
        pset["bad_op"].histogram.total_ops = 99
        with pytest.raises(ConsistencyError, match="bad_op"):
            check_consistency(pset)


class TestRenderSampled:
    def test_density_characters(self):
        clock = lambda: 0.0
        sp = SampledProfiler(clock, interval=1000)
        for _ in range(5):
            sp.record("op", start=0, latency=100)
        for _ in range(50):
            sp.record("op", start=1000, latency=100)
        for _ in range(500):
            sp.record("op", start=2000, latency=100)
        text = render_sampled(sp.series(), "op")
        assert "." in text and "o" in text and "@" in text

    def test_missing_operation(self):
        clock = lambda: 0.0
        sp = SampledProfiler(clock, interval=1000)
        sp.record("op", start=0, latency=1)
        assert "no samples" in render_sampled(sp.series(), "nope")

    def test_interval_labels(self):
        clock = lambda: 0.0
        sp = SampledProfiler(clock, interval=1000)
        sp.record("op", start=2500, latency=1)
        text = render_sampled(sp.series(), "op", interval_seconds=2.5)
        assert "5.0s" in text


class TestGnuplotData:
    def test_format(self):
        prof = Profile.from_latencies("read", [100, 200_000])
        data = gnuplot_data(prof)
        lines = data.strip().splitlines()
        assert lines[0].startswith("# read")
        assert lines[1] == "6 1"
        assert lines[2] == "17 1"

"""Layered-profiling analysis against real simulator runs."""

import pytest

from repro.core.layers import isolate_layer
from repro.system import System
from repro.workloads import build_source_tree, run_grep


@pytest.fixture(scope="module")
def layered_run():
    system = System.build(with_timer=False)
    root, _ = build_source_tree(system, scale=0.01)
    run_grep(system, root)
    return system


class TestLayerIsolation:
    def test_syscall_overhead_isolated(self, layered_run):
        system = layered_run
        user_read = system.user_profiles()["read"]
        fs_read = system.fs_profiles()["read"]
        result = isolate_layer(user_read, fs_read)
        # One FS read per syscall read: fan-out 1.
        assert result["fanout"] == pytest.approx(1.0)
        # The syscall layer's own cost: trap + hooks, a few hundred
        # cycles — far below the FS layer's work.
        assert 0 < result["own_latency"] < 5_000
        assert result["inner_share"] > 0.8

    def test_fs_to_driver_fanout_below_one(self, layered_run):
        # Most FS reads are page-cache hits: fewer driver requests
        # than FS reads.
        system = layered_run
        fs_read = system.fs_profiles()["read"]
        driver_read = system.driver_profiles()["disk_read"]
        result = isolate_layer(fs_read, driver_read)
        assert result["fanout"] < 1.0

    def test_every_layer_checksums(self, layered_run):
        system = layered_run
        for pset in (system.user_profiles(), system.fs_profiles(),
                     system.driver_profiles()):
            assert not pset.verify_checksums()

    def test_user_layer_sees_every_fs_op_slower(self, layered_run):
        # For each operation present at both layers, the user-level
        # mean must exceed the FS-level mean (it contains it).
        system = layered_run
        user = system.user_profiles()
        fs = system.fs_profiles()
        shared = set(user.operations()) & set(fs.operations())
        assert shared
        for op in shared:
            assert user[op].mean_latency() > fs[op].mean_latency()

"""Tests for the automated interesting-profile selector."""

import pytest

from repro.analysis.select import (ProfileSelector, SelectionConfig,
                                   top_contributors)
from repro.core.profileset import ProfileSet


def make_sets():
    """Two complete profiles: one op unchanged, one changed, one tiny."""
    a = ProfileSet(name="before")
    b = ProfileSet(name="after")
    # 'read': dominant and significantly different (new slow peak).
    for _ in range(1000):
        a.add("read", 1_000)
        b.add("read", 1_000)
    for _ in range(400):
        b.add("read", 3_000_000)
    # 'write': dominant but identical.
    for _ in range(800):
        a.add("write", 50_000)
        b.add("write", 50_000)
    # 'tiny': negligible latency and ops.
    a.add("tiny", 10)
    b.add("tiny", 4000)
    return a, b


class TestPhase1Filter:
    def test_drops_similar_and_negligible(self):
        a, b = make_sets()
        selector = ProfileSelector()
        survivors = selector.filter_pairs(a, b)
        assert survivors == ["read"]

    def test_min_ops_threshold(self):
        a = ProfileSet()
        b = ProfileSet()
        for _ in range(5):
            a.add("rare", 1_000_000)
        for _ in range(5):
            b.add("rare", 9_000_000)
        selector = ProfileSelector(SelectionConfig(min_ops=10))
        assert selector.filter_pairs(a, b) == []
        selector = ProfileSelector(SelectionConfig(min_ops=5))
        assert selector.filter_pairs(a, b) == ["rare"]

    def test_operation_missing_on_one_side(self):
        a = ProfileSet()
        b = ProfileSet()
        for _ in range(100):
            a.add("gone", 100_000)
        assert ProfileSelector().filter_pairs(a, b) == ["gone"]


class TestSelect:
    def test_reports_ranked_by_score(self):
        a, b = make_sets()
        reports = ProfileSelector().select(a, b)
        assert [r.operation for r in reports] == ["read"]
        assert reports[0].score > 0

    def test_report_fields(self):
        a, b = make_sets()
        report = ProfileSelector().select(a, b)[0]
        assert report.total_ops_a == 1000
        assert report.total_ops_b == 1400
        assert report.peak_count_changed  # one peak became two
        assert "read" in report.describe()

    def test_interesting_limit(self):
        a, b = make_sets()
        assert ProfileSelector().interesting(a, b, limit=0) == []
        assert ProfileSelector().interesting(a, b) == ["read"]

    def test_custom_metric(self):
        a, b = make_sets()
        selector = ProfileSelector(SelectionConfig(metric="total_ops"))
        reports = selector.select(a, b)
        assert reports[0].score == pytest.approx(400 / 1400)

    def test_moved_peaks_reported(self):
        a = ProfileSet()
        b = ProfileSet()
        for _ in range(500):
            a.add("op", 1_000)       # bucket 9
            b.add("op", 64_000)      # bucket 15
        report = ProfileSelector().report_pair("op", a["op"], b["op"])
        assert report.moved_peaks() == [(9, 15)]


class TestTopContributors:
    def test_selects_heavy_hitters(self):
        pset = ProfileSet()
        for _ in range(100):
            pset.add("big", 1_000_000)
        pset.add("small", 100)
        top = top_contributors(pset, fraction=0.9)
        assert [p.operation for p in top] == ["big"]

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            top_contributors(ProfileSet(), fraction=0.0)

    def test_max_profiles_cap(self):
        pset = ProfileSet()
        for op in ("a", "b", "c"):
            for _ in range(10):
                pset.add(op, 1000)
        top = top_contributors(pset, fraction=1.0, max_profiles=2)
        assert len(top) == 2

    def test_empty_set(self):
        assert top_contributors(ProfileSet(), fraction=0.5) == []

"""Tests for cluster profile aggregation and outlier detection."""

import pytest

from repro.analysis.cluster import (NodeProfiles, aggregate,
                                    outlier_nodes)
from repro.core.profileset import ProfileSet
from repro.sim.rng import SimRandom


def healthy_node(name, seed, ops=2000):
    """A node with the cluster's normal read latency distribution."""
    rng = SimRandom(seed)
    pset = ProfileSet(name=name)
    for _ in range(ops):
        # Bimodal: cache hits ~bucket 7, disk ~bucket 21.
        if rng.chance(0.8):
            pset.add("read", rng.jitter(150, sigma=0.4))
        else:
            pset.add("read", rng.jitter(3e6, sigma=0.4))
        pset.add("write", rng.jitter(2500, sigma=0.3))
    return NodeProfiles(name, pset)


def sick_node(name, seed, ops=2000):
    """A node whose reads mostly miss (failing cache / slow disk)."""
    rng = SimRandom(seed)
    pset = ProfileSet(name=name)
    for _ in range(ops):
        if rng.chance(0.2):
            pset.add("read", rng.jitter(150, sigma=0.4))
        else:
            pset.add("read", rng.jitter(3e7, sigma=0.4))
        pset.add("write", rng.jitter(2500, sigma=0.3))
    return NodeProfiles(name, pset)


class TestAggregate:
    def test_merges_all_nodes(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(3)]
        total = aggregate(nodes)
        assert total.total_ops() == sum(
            n.profiles.total_ops() for n in nodes)
        assert total.name == "cluster"

    def test_leaves_nodes_untouched(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(2)]
        before = nodes[0].profiles["read"].total_ops
        aggregate(nodes)
        assert nodes[0].profiles["read"].total_ops == before

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestOutliers:
    def test_sick_node_ranked_first(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(4)]
        nodes.append(sick_node("sick", seed=99))
        report = outlier_nodes(nodes)
        assert report.findings
        top = report.findings[0]
        assert top.node == "sick"
        assert top.operation == "read"

    def test_homogeneous_cluster_scores_low(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(4)]
        report = outlier_nodes(nodes)
        top_score = report.findings[0].score if report.findings else 0
        sick = outlier_nodes(
            nodes + [sick_node("sick", 99)]).findings[0].score
        assert sick > 3 * top_score

    def test_threshold_filters(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(3)]
        report = outlier_nodes(nodes, threshold=10.0)
        assert report.findings == []

    def test_min_ops_skips_sparse_operations(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(3)]
        nodes[0].profiles.add("rare", 1e9)
        report = outlier_nodes(nodes, min_ops=10)
        assert all(f.operation != "rare" for f in report.findings)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            outlier_nodes([healthy_node("solo", 1)])

    def test_unique_names_required(self):
        nodes = [healthy_node("dup", 1), healthy_node("dup", 2)]
        with pytest.raises(ValueError):
            outlier_nodes(nodes)

    def test_report_helpers(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(3)]
        nodes.append(sick_node("sick", 99))
        report = outlier_nodes(nodes)
        assert "sick" in report.nodes_flagged()
        assert len(report.worst(2)) <= 2
        assert "sick/read" in report.findings[0].describe()

    def test_alternative_metric(self):
        nodes = [healthy_node(f"n{i}", seed=i) for i in range(3)]
        nodes.append(sick_node("sick", 99))
        report = outlier_nodes(nodes, metric="jeffrey")
        assert report.findings[0].node == "sick"

"""Tests for peak detection."""

import pytest

from repro.analysis.peaks import Peak, find_peaks, peak_signature, peaks_differ
from repro.core.buckets import LatencyBuckets
from repro.core.profile import Profile


def hist(counts):
    return LatencyBuckets.from_counts(counts)


class TestFindPeaks:
    def test_empty_histogram_no_peaks(self):
        assert find_peaks(LatencyBuckets()) == []

    def test_single_mode(self):
        peaks = find_peaks(hist({5: 10, 6: 100, 7: 8}))
        assert len(peaks) == 1
        assert peaks[0].apex == 6
        assert peaks[0].ops == 118

    def test_gap_separates_peaks(self):
        peaks = find_peaks(hist({5: 100, 6: 40, 12: 80, 13: 20}))
        assert [p.apex for p in peaks] == [5, 12]

    def test_valley_separates_peaks(self):
        # Two modes joined by a deep but nonzero valley.
        counts = {5: 1000, 6: 400, 7: 3, 8: 2, 9: 300, 10: 900}
        peaks = find_peaks(hist(counts))
        assert len(peaks) == 2
        assert peaks[0].apex == 5
        assert peaks[1].apex == 10

    def test_shallow_dip_does_not_split(self):
        counts = {5: 900, 6: 700, 7: 850}
        peaks = find_peaks(hist(counts))
        assert len(peaks) == 1

    def test_min_ops_filters_noise(self):
        peaks = find_peaks(hist({5: 1000, 20: 1}), min_ops=5)
        assert len(peaks) == 1

    def test_works_on_profiles(self):
        prof = Profile.from_counts("x", {5: 10, 9: 20})
        assert len(find_peaks(prof)) == 2

    def test_peak_fields(self):
        peaks = find_peaks(hist({6: 50, 7: 100}))
        peak = peaks[0]
        assert peak.low == 6
        assert peak.high == 7
        assert peak.width() == 2
        assert peak.contains(6)
        assert not peak.contains(8)
        assert peak.mean_latency > 0

    def test_figure7_shape(self):
        # Four readdir peaks: past-EOF, cached, disk-cache, seeks.
        counts = {6: 2000, 7: 1800,
                  9: 50, 10: 700, 11: 900, 12: 400, 13: 120, 14: 30,
                  16: 900, 17: 1100,
                  18: 80, 19: 150, 20: 400, 21: 500, 22: 300, 23: 60}
        sig = peak_signature(hist(counts))
        assert len(sig) == 4


class TestPeaksDiffer:
    def test_identical_profiles_do_not_differ(self):
        a = hist({5: 100, 10: 50})
        b = hist({5: 110, 10: 45})
        assert not peaks_differ(a, b)

    def test_new_peak_differs(self):
        a = hist({5: 100})
        b = hist({5: 100, 15: 60})
        assert peaks_differ(a, b)

    def test_moved_peak_differs(self):
        a = hist({5: 100, 15: 60})
        b = hist({5: 100, 20: 60})
        assert peaks_differ(a, b)

    def test_small_shift_within_tolerance(self):
        a = hist({5: 100})
        b = hist({6: 100})
        assert not peaks_differ(a, b, location_tolerance=1)
        assert peaks_differ(a, b, location_tolerance=0)

"""Tests for histogram comparison metrics, including EMD properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.compare import (METRICS, aligned_counts, chi_squared,
                                    compare, earth_movers_distance,
                                    intersection_distance, jeffrey_divergence,
                                    kullback_leibler, minkowski,
                                    total_latency_difference,
                                    total_ops_difference)
from repro.core.buckets import LatencyBuckets
from repro.core.profile import Profile


def hist(counts):
    return LatencyBuckets.from_counts(counts)


histograms = st.dictionaries(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=1, max_value=10_000),
    min_size=1, max_size=15).map(hist)


class TestAlignment:
    def test_joint_range(self):
        a, b = aligned_counts(hist({3: 1}), hist({6: 2}))
        assert a == [1.0, 0.0, 0.0, 0.0]
        assert b == [0.0, 0.0, 0.0, 2.0]

    def test_empty_pair(self):
        a, b = aligned_counts(LatencyBuckets(), LatencyBuckets())
        assert a == [] and b == []


class TestIdentityProperty:
    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_zero_on_identical(self, name):
        h = hist({5: 100, 9: 40, 20: 7})
        assert compare(h, h, name) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_positive_on_different(self, name):
        # Different shape AND different op count, so scalar metrics
        # (total_ops/total_latency) see the difference too.
        a = hist({5: 100})
        b = hist({20: 60})
        assert compare(a, b, name) > 0


class TestEmd:
    def test_unit_move_costs_one_bin(self):
        a = hist({5: 10})
        b = hist({6: 10})
        assert earth_movers_distance(a, b) == pytest.approx(1.0)

    def test_distance_scales_with_bins_moved(self):
        a = hist({5: 10})
        near = hist({7: 10})
        far = hist({25: 10})
        assert earth_movers_distance(a, far) > \
            earth_movers_distance(a, near)

    def test_emd_sees_cross_bin_distance_chi_squared_does_not(self):
        # The paper's criticism of bin-by-bin metrics: disjoint
        # histograms look equally different to chi-squared no matter
        # how far apart they are.
        base = hist({5: 100})
        near = hist({8: 100})
        far = hist({30: 100})
        assert chi_squared(base, near) == pytest.approx(
            chi_squared(base, far))
        assert earth_movers_distance(base, far) > \
            earth_movers_distance(base, near) * 3

    @given(histograms, histograms)
    def test_symmetry(self, a, b):
        assert earth_movers_distance(a, b) == pytest.approx(
            earth_movers_distance(b, a), abs=1e-9)

    @given(histograms, histograms, histograms)
    def test_triangle_inequality(self, a, b, c):
        ab = earth_movers_distance(a, b)
        bc = earth_movers_distance(b, c)
        ac = earth_movers_distance(a, c)
        assert ac <= ab + bc + 1e-9

    @given(histograms)
    def test_non_negative(self, a):
        assert earth_movers_distance(a, a) == pytest.approx(0.0, abs=1e-9)


class TestBinByBinMetrics:
    def test_chi_squared_bounded(self):
        a, b = hist({5: 10}), hist({20: 10})
        # Symmetric chi-squared on disjoint normalized mass is 2.
        assert chi_squared(a, b) == pytest.approx(2.0)

    def test_intersection_bounded_by_one(self):
        a, b = hist({5: 10}), hist({20: 10})
        assert intersection_distance(a, b) == pytest.approx(1.0)

    def test_minkowski_orders(self):
        a, b = hist({5: 10, 6: 10}), hist({5: 20})
        assert minkowski(a, b, order=1) >= minkowski(a, b, order=2)

    def test_minkowski_bad_order(self):
        with pytest.raises(ValueError):
            minkowski(hist({1: 1}), hist({1: 1}), order=0)

    def test_kl_asymmetric_but_nonnegative(self):
        a, b = hist({5: 90, 6: 10}), hist({5: 10, 6: 90})
        assert kullback_leibler(a, b) >= 0
        assert jeffrey_divergence(a, b) == pytest.approx(
            jeffrey_divergence(b, a))

    @given(histograms, histograms)
    def test_jeffrey_symmetric(self, a, b):
        assert jeffrey_divergence(a, b) == pytest.approx(
            jeffrey_divergence(b, a), abs=1e-9)


class TestScalarMetrics:
    def test_total_ops_difference(self):
        a = hist({5: 100})
        b = hist({5: 50})
        assert total_ops_difference(a, b) == pytest.approx(0.5)

    def test_total_latency_difference(self):
        a = Profile.from_latencies("x", [100] * 10)
        b = Profile.from_latencies("x", [100] * 5)
        assert total_latency_difference(a, b) == pytest.approx(0.5)

    def test_empty_histograms(self):
        assert total_ops_difference(LatencyBuckets(),
                                    LatencyBuckets()) == 0.0
        assert total_latency_difference(LatencyBuckets(),
                                        LatencyBuckets()) == 0.0


class TestRegistry:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            compare(hist({1: 1}), hist({1: 1}), "nope")

    def test_all_paper_methods_present(self):
        for name in ("chi_squared", "minkowski", "intersection",
                     "kullback_leibler", "jeffrey", "emd", "total_ops",
                     "total_latency"):
            assert name in METRICS


class TestEdgeCases:
    """Degenerate inputs every metric must handle without surprises."""

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_empty_vs_empty_is_zero(self, name):
        assert compare(LatencyBuckets(), LatencyBuckets(),
                       name) == pytest.approx(0.0)

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_empty_vs_nonempty_is_finite_and_nonnegative(self, name):
        import math
        h = hist({5: 10})
        for pair in ((LatencyBuckets(), h), (h, LatencyBuckets())):
            score = compare(*pair, method=name)
            assert score >= 0.0
            assert math.isfinite(score)

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_single_bucket_identical_is_zero(self, name):
        a, b = hist({7: 42}), hist({7: 42})
        assert compare(a, b, name) == pytest.approx(0.0, abs=1e-9)

    def test_single_bucket_shift_scores_shape_metrics(self):
        # Same mass, different location: shape metrics see it, the
        # op-count scalar cannot.
        a, b = hist({7: 42}), hist({9: 42})
        assert earth_movers_distance(a, b) == pytest.approx(2.0)
        assert intersection_distance(a, b) == pytest.approx(1.0)
        assert compare(a, b, "total_ops") == 0.0

    def test_mismatched_bucket_ranges_align_on_joint_range(self):
        # Disjoint ranges: alignment must pad, not truncate, and the
        # distributions are then fully disjoint.
        low, high = hist({0: 5, 1: 5}), hist({30: 5, 31: 5})
        va, vb = aligned_counts(low, high)
        assert len(va) == len(vb) == 32
        assert sum(va) == sum(vb) == 10
        assert intersection_distance(low, high) == pytest.approx(1.0)
        assert chi_squared(low, high) == pytest.approx(2.0)

    def test_partial_overlap_alignment(self):
        a, b = hist({4: 1, 8: 1}), hist({6: 2})
        va, vb = aligned_counts(a, b)
        assert len(va) == len(vb) == 5  # joint range 4..8
        assert va == [1.0, 0.0, 0.0, 0.0, 1.0]
        assert vb == [0.0, 0.0, 2.0, 0.0, 0.0]

    @pytest.mark.parametrize(
        "name", sorted(n for n in METRICS if n != "kullback_leibler"))
    @given(a=histograms, b=histograms)
    def test_symmetry_of_all_metrics_but_kl(self, name, a, b):
        assert compare(a, b, name) == pytest.approx(
            compare(b, a, name), rel=1e-9, abs=1e-9)

    def test_kl_is_genuinely_asymmetric(self):
        # The reason KL is excluded above: a one-sided missing bucket
        # is free in one direction and expensive in the other.
        a, b = hist({5: 99, 6: 1}), hist({5: 100})
        assert kullback_leibler(b, a) != pytest.approx(
            kullback_leibler(a, b))

    @pytest.mark.parametrize("name", sorted(METRICS))
    def test_scale_invariance_of_distribution_metrics(self, name):
        # Everything except the scalar metrics normalizes mass first:
        # 10x the ops with the same shape must score 0.
        a, b = hist({5: 10, 9: 30}), hist({5: 100, 9: 300})
        score = compare(a, b, name)
        if name in ("total_ops", "total_latency"):
            assert score > 0
        else:
            assert score == pytest.approx(0.0, abs=1e-9)

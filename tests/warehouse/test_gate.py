"""Tests for the regression gate's thresholds, scoring, and exit codes."""

import pytest

from repro.core.profileset import ProfileSet
from repro.warehouse.gate import (DEFAULT_GATE_THRESHOLDS, EXIT_BREACH,
                                  Threshold, evaluate_gate, parse_threshold)


def pset(samples):
    return ProfileSet.from_operation_latencies(samples)


STEADY = {"read": [100.0] * 50, "llseek": [40.0] * 50}


class TestThreshold:
    def test_parse(self):
        t = parse_threshold("emd=0.5")
        assert (t.metric, t.value) == ("emd", 0.5)

    @pytest.mark.parametrize("text", ["emd", "=1", "emd=", "emd=abc"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="bad threshold|unknown metric"):
            parse_threshold(text)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Threshold("wat", 1.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Threshold("emd", -0.1)


class TestEvaluateGate:
    def test_identical_capture_passes(self):
        report = evaluate_gate(pset(STEADY), pset(STEADY))
        assert report.passed
        assert report.exit_code() == 0
        assert report.operations_checked == 2
        assert not report.breaches
        assert "PASS" in report.describe()

    def test_shifted_capture_breaches(self):
        shifted = {"read": [800.0] * 50, "llseek": [40.0] * 50}
        report = evaluate_gate(pset(STEADY), pset(shifted))
        assert not report.passed
        assert report.exit_code() == EXIT_BREACH
        assert {b.operation for b in report.breaches} == {"read"}
        assert "BREACH read" in report.describe()
        assert "FAIL" in report.describe()

    def test_new_operation_is_maximal_shift(self):
        grown = dict(STEADY, mmap=[100.0] * 50)
        report = evaluate_gate(pset(STEADY), pset(grown))
        assert "mmap" in {b.operation for b in report.breaches}

    def test_vanished_operation_is_maximal_shift(self):
        shrunk = {"read": [100.0] * 50}
        report = evaluate_gate(pset(STEADY), pset(shrunk))
        assert "llseek" in {b.operation for b in report.breaches}

    def test_min_ops_skips_noise_on_both_sides(self):
        noisy_base = dict(STEADY, rare=[999.0])
        noisy_capture = dict(STEADY, rare=[1.0])
        report = evaluate_gate(pset(noisy_base), pset(noisy_capture),
                               min_ops=10)
        assert report.passed
        assert report.operations_skipped == 1
        assert "below min-ops" in report.describe()

    def test_min_ops_keeps_one_sided_volume(self):
        # 50 requests vanished: that is a real shift, not noise.
        report = evaluate_gate(pset(STEADY), pset({"read": [100.0] * 50}),
                               min_ops=10)
        assert not report.passed

    def test_custom_threshold_order_and_scores(self):
        thresholds = (Threshold("emd", 1000.0),)
        report = evaluate_gate(pset(STEADY),
                               pset({"read": [800.0] * 50,
                                     "llseek": [40.0] * 50}),
                               thresholds=thresholds)
        assert report.passed  # generous limit
        assert [(op, metric) for op, metric, _ in report.scores] == \
            [("llseek", "emd"), ("read", "emd")]

    def test_no_thresholds_is_loud(self):
        with pytest.raises(ValueError, match="at least one threshold"):
            evaluate_gate(pset(STEADY), pset(STEADY), thresholds=())

    def test_default_thresholds_are_emd_primary(self):
        assert DEFAULT_GATE_THRESHOLDS[0].metric == "emd"
        assert len(DEFAULT_GATE_THRESHOLDS) == 2

"""Tests for tier geometry, compaction planning, and gc planning."""

import pytest

from repro.warehouse.index import SegmentMeta, WarehouseIndex
from repro.warehouse.tiers import (CompactionPolicy, plan_compactions,
                                   plan_gc)


def meta(seg_id, tier=0, epoch=None, span=1, source="web"):
    epoch = seg_id if epoch is None else epoch
    return SegmentMeta(seg_id=seg_id, source=source, tier=tier,
                       epoch=epoch, span=span,
                       file=f"f{seg_id}", nbytes=1,
                       ops=(("filesystem", "read"),))


def index_of(*metas):
    index = WarehouseIndex()
    for m in metas:
        index.apply(m.to_record())
    return index


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(fanout=1)
        with pytest.raises(ValueError):
            CompactionPolicy(keep=())
        with pytest.raises(ValueError):
            CompactionPolicy(keep=(4, 0))

    def test_span_and_windows(self):
        policy = CompactionPolicy(fanout=4, keep=(8, 8, 8))
        assert [policy.span(t) for t in range(3)] == [1, 4, 16]
        assert policy.window_start(1, 7) == 4
        assert policy.window_start(2, 17) == 16
        with pytest.raises(ValueError):
            policy.span(3)

    def test_aged_horizon_arithmetic(self):
        policy = CompactionPolicy(fanout=2, keep=(3, 2))
        # Tier 0 keeps base epochs [horizon-2, horizon] hot.
        assert not policy.aged(0, epoch_end=8, horizon=10)
        assert policy.aged(0, epoch_end=7, horizon=10)
        # Tier 1 windows are 2 wide; 2 kept => 4 base epochs hot.
        assert not policy.aged(1, epoch_end=7, horizon=10)
        assert policy.aged(1, epoch_end=6, horizon=10)


class TestPlanCompactions:
    POLICY = CompactionPolicy(fanout=2, keep=(2, 2, 2))

    def test_empty_source_plans_nothing(self):
        assert plan_compactions(WarehouseIndex(), "web", self.POLICY) == []

    def test_hot_segments_stay_put(self):
        index = index_of(*(meta(i) for i in range(1, 3)))
        assert plan_compactions(index, "web", self.POLICY) == []

    def test_aged_segments_group_by_aligned_window(self):
        # Epochs 1..8 (ids 1..8): horizon 8, tier-0 keeps {7, 8} hot.
        index = index_of(*(meta(i) for i in range(1, 9)))
        groups = plan_compactions(index, "web", self.POLICY)
        windows = [(g.tier, g.epoch, [m.seg_id for m in g.inputs])
                   for g in groups]
        # Aged: 1..6. Windows of span 2: [0,1]->1, [2,3]->2,3, [4,5]->4,5
        # and 6 straggles alone in [6,7] (7 is hot at tier 0).
        assert windows == [(1, 0, [1]), (1, 2, [2, 3]), (1, 4, [4, 5]),
                           (1, 6, [6])]

    def test_planning_is_deterministic(self):
        index = index_of(*(meta(i) for i in range(1, 9)))
        assert plan_compactions(index, "web", self.POLICY) == \
            plan_compactions(index, "web", self.POLICY)

    def test_top_tier_never_compacts(self):
        policy = CompactionPolicy(fanout=2, keep=(1,))
        index = index_of(*(meta(i) for i in range(1, 6)))
        assert plan_compactions(index, "web", policy) == []

    def test_mid_tier_promotes_upward(self):
        # A tier-1 segment far behind the horizon promotes to tier 2.
        index = index_of(meta(1, tier=1, epoch=0, span=2),
                         meta(2, epoch=20))
        groups = plan_compactions(index, "web", self.POLICY)
        assert [(g.tier, g.epoch) for g in groups] == [(2, 0)]

    def test_horizon_is_per_source(self):
        # Another source's recent data must not age this source's.
        index = index_of(meta(1, epoch=0), meta(2, epoch=50, source="hot"))
        assert plan_compactions(index, "web", self.POLICY) == []


class TestPlanGc:
    def test_only_top_tier_past_retention(self):
        policy = CompactionPolicy(fanout=2, keep=(2, 2))
        index = index_of(
            meta(1, tier=1, epoch=0, span=2),    # ends at 1: aged
            meta(2, tier=1, epoch=4, span=2),    # ends at 5: hot
            meta(3, epoch=0),                    # tier 0 is never gc'd
            meta(4, epoch=8))
        victims = plan_gc(index, "web", policy)
        assert [m.seg_id for m in victims] == [1]

    def test_empty_source(self):
        assert plan_gc(WarehouseIndex(), "web", CompactionPolicy()) == []

"""Tests for the warehouse index as a pure reduction of the log."""

import pytest

from repro.warehouse.index import SegmentMeta, WarehouseIndex


def meta(seg_id, source="web", tier=0, epoch=None, span=1,
         ops=(("filesystem", "read"),)):
    epoch = seg_id if epoch is None else epoch
    return SegmentMeta(seg_id=seg_id, source=source, tier=tier,
                       epoch=epoch, span=span,
                       file=f"segments/{source}/t{tier}-{epoch}-{seg_id}.ospb",
                       nbytes=100, ops=tuple(sorted(ops)))


class TestSegmentMeta:
    def test_record_round_trip(self):
        original = meta(7, ops=(("filesystem", "read"), ("user", "llseek")))
        assert SegmentMeta.from_record(original.to_record()) == original

    def test_epoch_window(self):
        m = meta(1, tier=2, epoch=8, span=4)
        assert m.epoch_end == 11
        assert m.overlaps(None, None)
        assert m.overlaps(11, 20)
        assert m.overlaps(0, 8)
        assert not m.overlaps(12, None)
        assert not m.overlaps(None, 7)

    def test_bad_record_is_loud(self):
        with pytest.raises(ValueError, match="bad segment record"):
            SegmentMeta.from_record({"rec": "segment", "id": "x"})


class TestReduction:
    def test_ingest_updates_live_and_counters(self):
        index = WarehouseIndex()
        index.apply(meta(1).to_record())
        index.apply(meta(2).to_record())
        assert len(index) == 2
        assert index.segments_total == 2
        assert index.compactions_total == 0
        assert index.next_id == 3

    def test_compaction_supersedes_inputs(self):
        index = WarehouseIndex()
        index.apply(meta(1).to_record())
        index.apply(meta(2).to_record())
        out = meta(3, tier=1, epoch=0, span=4)
        index.apply(out.to_record(inputs=(1, 2)))
        assert len(index) == 1
        assert index.get(1) is None and index.get(2) is None
        assert index.get(3) == out
        assert index.compactions_total == 1
        assert index.segments_total == 2  # ingests stay counted
        assert meta(1).file in index.dead_files

    def test_gc_drops_and_counts(self):
        index = WarehouseIndex()
        index.apply(meta(1).to_record())
        index.apply(meta(2).to_record())
        index.apply({"rec": "gc", "ids": [1, 99]})  # 99 is already gone
        assert len(index) == 1
        assert index.gc_evictions_total == 1

    def test_duplicate_id_is_loud(self):
        index = WarehouseIndex()
        index.apply(meta(1).to_record())
        with pytest.raises(ValueError, match="duplicate"):
            index.apply(meta(1).to_record())

    def test_unknown_record_kind_is_loud(self):
        with pytest.raises(ValueError, match="unknown log record"):
            WarehouseIndex().apply({"rec": "mystery"})

    def test_replay_reproduces_identical_state(self):
        records = [meta(1).to_record(), meta(2).to_record(),
                   meta(3, tier=1, epoch=0, span=4).to_record(inputs=(1,)),
                   {"rec": "gc", "ids": [2]}]
        a, b = WarehouseIndex(), WarehouseIndex()
        for record in records:
            a.apply(record)
            b.apply(record)
        assert [a.get(i) for i in range(5)] == [b.get(i) for i in range(5)]
        assert (a.segments_total, a.compactions_total,
                a.gc_evictions_total) == (b.segments_total,
                                          b.compactions_total,
                                          b.gc_evictions_total)
        assert a.dead_files == b.dead_files


class TestSelect:
    def build(self):
        index = WarehouseIndex()
        index.apply(meta(1, epoch=0,
                         ops=(("filesystem", "read"),)).to_record())
        index.apply(meta(2, epoch=1,
                         ops=(("filesystem", "llseek"),)).to_record())
        index.apply(meta(3, epoch=2, ops=(("user", "read"),)).to_record())
        index.apply(meta(4, source="other", epoch=0).to_record())
        return index

    def test_select_by_source_in_epoch_order(self):
        index = self.build()
        assert [m.seg_id for m in index.select("web")] == [1, 2, 3]
        assert [m.seg_id for m in index.select("other")] == [4]
        assert index.select("nope") == []

    def test_postings_filter_op_and_layer(self):
        index = self.build()
        assert [m.seg_id for m in index.select("web", op="read")] == [1, 3]
        assert [m.seg_id
                for m in index.select("web", layer="filesystem")] == [1, 2]
        assert [m.seg_id for m in index.select(
            "web", layer="user", op="read")] == [3]
        assert index.select("web", op="write") == []

    def test_range_filter(self):
        index = self.build()
        assert [m.seg_id for m in index.select("web", t0=1, t1=2)] == [2, 3]
        assert [m.seg_id for m in index.select("web", t1=0)] == [1]

    def test_next_epoch_tracks_spans(self):
        index = WarehouseIndex()
        assert index.next_epoch("web") == 0
        index.apply(meta(1, tier=1, epoch=0, span=4).to_record())
        assert index.next_epoch("web") == 4
        index.apply(meta(2, epoch=9).to_record())
        assert index.next_epoch("web") == 10

    def test_sources_excludes_emptied(self):
        index = self.build()
        index.apply({"rec": "gc", "ids": [4]})
        assert index.sources() == ["web"]

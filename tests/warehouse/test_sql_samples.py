"""Tests for the SQL sample relation (``state``/``wait_site``/``samples``).

Referencing any sample dimension switches the scan from latency
segments to the warehouse's ``samples`` segments: one row per
StateProfile cell, with ``count()`` summing sample counts.  Latency
aggregates are meaningless there and must be rejected, as must queries
mixing the two segment families.
"""

import pytest

from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.sampling import StateProfile
from repro.warehouse import QueryError, Warehouse, execute_sql


def pset(samples):
    out = ProfileSet()
    for op, latencies in samples.items():
        prof = Profile(op, layer=Layer.FILESYSTEM)
        for latency in latencies:
            prof.add(latency)
        out.insert(prof)
    return out


@pytest.fixture
def wh(tmp_path):
    """Latency and state segments side by side, two sources."""
    wh = Warehouse(tmp_path)
    wh.ingest("web-1", pset({"read": [100.0] * 6}), epoch=0)

    first = StateProfile(name="s", interval=1000.0)
    first.intervals = 2
    first.add("blocked", "filesystem", "llseek", "sem:i_sem:3", 40)
    first.add("blocked", "filesystem", "read", "io:read", 10)
    first.add("running", "user", "-", "-", 6)
    wh.ingest_state("web-1", first, epoch=1)

    second = StateProfile(name="s", interval=1000.0)
    second.intervals = 1
    second.add("blocked", "filesystem", "llseek", "sem:i_sem:3", 2)
    second.add("runnable", "filesystem", "read", "-", 5)
    wh.ingest_state("db-1", second, epoch=0)
    return wh


class TestSampleScans:
    def test_group_by_state_sums_samples(self, wh):
        result = execute_sql(
            wh, "SELECT state, count() GROUP BY state ORDER BY state")
        assert result.columns == ["state", "count()"]
        assert result.rows == [["blocked", 52], ["runnable", 5],
                               ["running", 6]]

    def test_wait_site_ranking(self, wh):
        result = execute_sql(
            wh, "SELECT state, wait_site, count() "
                "GROUP BY state, wait_site ORDER BY count() DESC LIMIT 2")
        assert result.rows[0] == ["blocked", "sem:i_sem:3", 42]
        assert result.rows[1] == ["blocked", "io:read", 10]

    def test_where_filters_source_and_epoch(self, wh):
        result = execute_sql(
            wh, "SELECT wait_site, count() WHERE source = 'web-1' "
                "AND state = 'blocked' GROUP BY wait_site "
                "ORDER BY wait_site")
        assert result.rows == [["io:read", 10], ["sem:i_sem:3", 40]]

    def test_layer_and_op_dimensions_come_from_cells(self, wh):
        result = execute_sql(
            wh, "SELECT layer, op, count() WHERE state = 'blocked' "
                "GROUP BY layer, op ORDER BY op")
        assert result.rows == [["filesystem", "llseek", 42],
                               ["filesystem", "read", 10]]

    def test_samples_column_projects_raw_counts(self, wh):
        result = execute_sql(
            wh, "SELECT samples, count() WHERE wait_site = 'sem:i_sem:3' "
                "GROUP BY samples ORDER BY samples")
        assert result.rows == [[2, 2], [40, 40]]

    def test_empty_sample_scan_counts_zero(self, wh):
        result = execute_sql(
            wh, "SELECT state, count() WHERE source = 'nope' "
                "GROUP BY state")
        assert result.rows == []

    def test_latency_scan_unaffected_by_state_segments(self, wh):
        result = execute_sql(
            wh, "SELECT source, count() GROUP BY source ORDER BY source")
        # Only the latency segment's 6 ops — never sample counts.
        assert result.rows == [["web-1", 6]]


class TestSampleValidation:
    def test_latency_aggregate_over_samples_rejected(self, wh):
        with pytest.raises(QueryError, match="count\\(\\) sums samples"):
            execute_sql(wh, "SELECT state, p99() GROUP BY state")

    def test_mixing_bucket_and_sample_dimensions_rejected(self, wh):
        with pytest.raises(QueryError, match="separately"):
            execute_sql(
                wh, "SELECT bucket, state, count() GROUP BY bucket, state")

    def test_total_latency_over_samples_rejected(self, wh):
        with pytest.raises(QueryError):
            execute_sql(
                wh, "SELECT wait_site, total_latency() GROUP BY wait_site")

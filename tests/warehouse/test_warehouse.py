"""Tests for the Warehouse facade: ingest, query, compact, gc, baselines.

The load-bearing property (the PR's acceptance criterion) is round-trip
determinism: ingest N segments, compact them through the tiers, reopen
the directory — ``query()`` stays byte-identical to
``ProfileSet.merged()`` over the raw segments it started from.
"""

import random

import pytest

from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.warehouse import CompactionPolicy, Warehouse, WarehouseError

SMALL = CompactionPolicy(fanout=2, keep=(2, 2, 2))


def pset(samples, layer=Layer.FILESYSTEM):
    out = ProfileSet()
    for op, latencies in samples.items():
        prof = Profile(op, layer=layer)
        for latency in latencies:
            prof.add(latency)
        out.insert(prof)
    return out


def random_pset(seed):
    """A small, seed-determined profile set (ops, layers, latencies)."""
    rng = random.Random(seed)
    layers = (Layer.FILESYSTEM, Layer.USER, Layer.DRIVER)
    out = ProfileSet()
    for op in rng.sample(["read", "write", "llseek", "readdir", "fsync",
                          "mmap", "open"], rng.randint(1, 4)):
        prof = Profile(op, layer=rng.choice(layers))
        for _ in range(rng.randint(1, 40)):
            prof.add(rng.uniform(1.0, 1e6))
        out.insert(prof)
    return out


class TestIngestQuery:
    def test_ingest_assigns_epochs_and_counts(self, tmp_path):
        wh = Warehouse(tmp_path)
        first = wh.ingest("web", pset({"read": [100.0] * 5}))
        second = wh.ingest("web", pset({"read": [200.0] * 5}))
        assert (first.epoch, second.epoch) == (0, 1)
        assert (first.tier, second.tier) == (0, 0)
        assert wh.segments_total == 2
        assert wh.sources() == ["web"]

    def test_query_merges_history(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest("web", pset({"read": [100.0] * 5}))
        wh.ingest("web", pset({"read": [200.0] * 5}))
        merged = wh.query("web")
        assert merged["read"].total_ops == 10

    def test_query_range_is_inclusive(self, tmp_path):
        wh = Warehouse(tmp_path)
        for e in range(4):
            wh.ingest("web", pset({"read": [100.0]}), epoch=e)
        assert wh.query("web", t0=1, t1=2)["read"].total_ops == 2
        assert wh.query("web", t1=0)["read"].total_ops == 1
        assert len(wh.query("web", t0=4)) == 0

    def test_query_filters_layer_and_op(self, tmp_path):
        wh = Warehouse(tmp_path)
        mixed = ProfileSet.merged([pset({"read": [100.0] * 3}),
                                   pset({"llseek": [10.0] * 2},
                                        layer=Layer.USER)])
        wh.ingest("web", mixed)
        by_op = wh.query("web", op="read")
        assert by_op.operations() == ["read"]
        assert by_op["read"].total_ops == 3
        by_layer = wh.query("web", layer=Layer.USER)
        assert {p.operation for p in by_layer} == {"llseek"}
        assert len(wh.query("web", layer=Layer.USER, op="read")) == 0

    def test_sources_are_isolated(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest("a", pset({"read": [100.0]}))
        wh.ingest("b", pset({"read": [200.0] * 9}))
        assert wh.query("a")["read"].total_ops == 1
        assert len(wh.query("ghost")) == 0

    def test_bad_names_are_rejected(self, tmp_path):
        wh = Warehouse(tmp_path)
        for bad in ("", "../evil", "a/b", ".hidden", "x" * 65):
            with pytest.raises(WarehouseError):
                wh.ingest(bad, pset({"read": [1.0]}))

    def test_negative_epoch_rejected(self, tmp_path):
        with pytest.raises(WarehouseError, match="negative epoch"):
            Warehouse(tmp_path).ingest("web", pset({"read": [1.0]}),
                                       epoch=-1)

    def test_damaged_segment_file_is_loud(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest("web", pset({"read": [100.0]}))
        path = tmp_path / meta.file
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(WarehouseError, match="damaged"):
            wh.query("web")

    def test_missing_segment_file_is_loud(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest("web", pset({"read": [100.0]}))
        (tmp_path / meta.file).unlink()
        with pytest.raises(WarehouseError, match="missing on disk"):
            wh.query("web")


class TestRoundTripDeterminism:
    """Acceptance: compaction and reopen never change query() bytes."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 2006])
    def test_ingest_compact_reopen_is_byte_identical(self, tmp_path, seed):
        rng = random.Random(seed)
        wh = Warehouse(tmp_path / "wh", policy=SMALL)
        raw = []
        for epoch in range(rng.randint(8, 20)):
            segment = random_pset(seed * 1000 + epoch)
            raw.append(segment)
            wh.ingest("web", segment, epoch=epoch)
        expected = ProfileSet.merged(raw).to_bytes()
        assert wh.query("web").to_bytes() == expected

        created = wh.compact()
        assert created  # the policy is tight enough that work happened
        assert wh.query("web").to_bytes() == expected

        reopened = Warehouse(tmp_path / "wh", policy=SMALL)
        assert reopened.query("web").to_bytes() == expected

        # A second compaction round finds nothing new to do.
        assert reopened.compact() == []
        assert reopened.query("web").to_bytes() == expected

    @pytest.mark.parametrize("seed", [5, 11])
    def test_range_query_survives_compaction_widening(self, tmp_path, seed):
        # Compaction coarsens epoch windows; a range query may widen to
        # the containing windows but must stay deterministic.
        wh = Warehouse(tmp_path, policy=SMALL)
        for epoch in range(12):
            wh.ingest("web", random_pset(seed * 100 + epoch), epoch=epoch)
        before = wh.query("web", t0=0, t1=3)
        wh.compact()
        after = wh.query("web", t0=0, t1=3)
        # Every request visible before is still visible after.
        assert after.total_ops() >= before.total_ops()
        assert wh.query("web", t0=0, t1=3).to_bytes() == after.to_bytes()


class TestCompactionAndGc:
    def fill(self, tmp_path, epochs=12):
        wh = Warehouse(tmp_path, policy=SMALL)
        for epoch in range(epochs):
            wh.ingest("web", pset({"read": [100.0 + epoch] * 4}),
                      epoch=epoch)
        return wh

    def test_compact_reduces_live_segments(self, tmp_path):
        wh = self.fill(tmp_path)
        before = len(wh.index)
        wh.compact()
        assert len(wh.index) < before
        assert wh.compactions_total > 0

    def test_compact_removes_superseded_files(self, tmp_path):
        wh = self.fill(tmp_path)
        wh.compact()
        on_disk = {p.relative_to(tmp_path).as_posix()
                   for p in (tmp_path / "segments").rglob("*.ospb")}
        assert on_disk == wh.index.live_files()

    def test_compaction_alone_never_drops_requests(self, tmp_path):
        wh = self.fill(tmp_path)
        total = wh.query("web").total_ops()
        wh.compact()
        assert wh.query("web").total_ops() == total

    def test_gc_evicts_only_top_tier_past_retention(self, tmp_path):
        wh = self.fill(tmp_path, epochs=40)
        wh.compact()
        evicted = wh.gc()
        assert evicted == wh.gc_evictions_total > 0
        # Recent history is intact.
        assert wh.query("web", t0=39, t1=39).total_ops() == 4

    def test_gc_without_pressure_is_a_noop(self, tmp_path):
        wh = self.fill(tmp_path, epochs=3)
        assert wh.gc() == 0
        assert wh.query("web").total_ops() == 12

    def test_gc_survives_reopen(self, tmp_path):
        wh = self.fill(tmp_path, epochs=40)
        wh.compact()
        wh.gc()
        reopened = Warehouse(tmp_path, policy=SMALL)
        assert reopened.gc_evictions_total == wh.gc_evictions_total
        assert reopened.query("web").to_bytes() == \
            wh.query("web").to_bytes()

    def test_gc_sweeps_orphan_files(self, tmp_path):
        wh = self.fill(tmp_path, epochs=2)
        orphan = tmp_path / "segments" / "web" / "t0-999-rogue.ospb"
        orphan.write_bytes(b"uncommitted leftovers")
        wh.gc()
        assert not orphan.exists()
        assert wh.orphans_removed == 1
        assert wh.query("web").total_ops() == 8  # committed data intact


class TestRecentPsets:
    def test_most_recent_non_empty_oldest_first(self, tmp_path):
        wh = Warehouse(tmp_path)
        for epoch in range(5):
            wh.ingest("web", pset({"read": [float(epoch + 1)] * 2}),
                      epoch=epoch)
        wh.ingest("web", ProfileSet(), epoch=5)  # empty: skipped
        recent = wh.recent_psets("web", 3)
        assert [p["read"].total_ops for p in recent] == [2, 2, 2]
        means = [p["read"].mean_latency() for p in recent]
        assert means == sorted(means)  # oldest first

    def test_count_bounds(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest("web", pset({"read": [1.0]}))
        assert wh.recent_psets("web", 0) == []
        assert len(wh.recent_psets("web", 10)) == 1
        assert wh.recent_psets("ghost", 3) == []


class TestBaselines:
    def test_save_load_list_rm(self, tmp_path):
        wh = Warehouse(tmp_path)
        reference = pset({"read": [100.0] * 10})
        wh.save_baseline("clean", reference)
        assert wh.baselines() == ["clean"]
        assert wh.load_baseline("clean").to_bytes() == reference.to_bytes()
        assert wh.remove_baseline("clean") is True
        assert wh.remove_baseline("clean") is False
        assert wh.baselines() == []

    def test_save_overwrites_atomically(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.save_baseline("clean", pset({"read": [100.0]}))
        wh.save_baseline("clean", pset({"read": [200.0] * 3}))
        assert wh.load_baseline("clean")["read"].total_ops == 3

    def test_missing_baseline_names_alternatives(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.save_baseline("clean", pset({"read": [100.0]}))
        with pytest.raises(WarehouseError, match="have: clean"):
            wh.load_baseline("ghost")

    def test_damaged_baseline_is_loud(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.save_baseline("clean", pset({"read": [100.0]}))
        path = tmp_path / "baselines" / "clean.ospb"
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(WarehouseError, match="damaged"):
            wh.load_baseline("clean")

    def test_bad_baseline_name_rejected(self, tmp_path):
        with pytest.raises(WarehouseError):
            Warehouse(tmp_path).save_baseline("../../etc/passwd",
                                              pset({"read": [1.0]}))

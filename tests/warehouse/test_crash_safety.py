"""Crash-safety: kill the warehouse mid-ingest / mid-compaction, reopen.

The write-then-commit discipline under test: a segment file always
lands (atomic rename) *before* its log record.  Killing the process in
either half of that window and replaying the log must never lose a
committed segment and never double-count one — the worst outcome is an
orphan file, which ``gc`` sweeps.

Faults are armed through the ``warehouse.ingest`` / ``warehouse.compact``
sites of :mod:`repro.core.faults` (the same seed-driven plan the shard
and service suites use); the seed comes from ``OSPROF_FAULT_SEED`` so
the CI fault sweep covers this suite too.
"""

import os

import pytest

from repro.core.faults import FaultPlan, FaultPoint, InjectedFault
from repro.core.profileset import ProfileSet
from repro.warehouse import CompactionPolicy, Warehouse

SEED = int(os.environ.get("OSPROF_FAULT_SEED", "2006"))

SMALL = CompactionPolicy(fanout=2, keep=(2, 2, 2))


def plan(*points):
    return FaultPlan(points, seed=SEED)


def pset(epoch):
    return ProfileSet.from_operation_latencies(
        {"read": [100.0 + epoch] * 4})


def fill(root, epochs, fault_plan=None, policy=SMALL):
    wh = Warehouse(root, policy=policy, fault_plan=fault_plan)
    for epoch in range(epochs):
        wh.ingest("web", pset(epoch), epoch=epoch)
    return wh


class TestCrashMidIngest:
    """Each commit fires the site twice: after-file, then after-log."""

    def test_crash_after_file_before_log(self, tmp_path):
        # The 4th ingest dies between its file landing and its commit.
        armed = fill(tmp_path, 3, plan(
            FaultPoint("warehouse.ingest", "crash", key="after-file",
                       attempts=(6,))))
        with pytest.raises(InjectedFault):
            armed.ingest("web", pset(3), epoch=3)

        reopened = Warehouse(tmp_path, policy=SMALL)
        # The uncommitted segment does not exist; the 3 committed ones do.
        assert reopened.segments_total == 3
        expected = ProfileSet.merged([pset(e) for e in range(3)])
        assert reopened.query("web").to_bytes() == expected.to_bytes()
        # Its file is an orphan until gc sweeps it.
        files = list((tmp_path / "segments").rglob("*.ospb"))
        assert len(files) == 4
        reopened.gc()
        assert reopened.orphans_removed == 1
        assert reopened.query("web").to_bytes() == expected.to_bytes()

    def test_crash_after_log_commit_is_durable(self, tmp_path):
        armed = fill(tmp_path, 3, plan(
            FaultPoint("warehouse.ingest", "crash", key="after-log",
                       attempts=(7,))))
        with pytest.raises(InjectedFault):
            armed.ingest("web", pset(3), epoch=3)

        # The record landed, so the segment is committed: visible once,
        # exactly once, after replay.
        reopened = Warehouse(tmp_path, policy=SMALL)
        assert reopened.segments_total == 4
        expected = ProfileSet.merged([pset(e) for e in range(4)])
        assert reopened.query("web").to_bytes() == expected.to_bytes()

    def test_retry_after_crash_does_not_double_count(self, tmp_path):
        armed = fill(tmp_path, 3, plan(
            FaultPoint("warehouse.ingest", "crash", key="after-file",
                       attempts=(6,))))
        with pytest.raises(InjectedFault):
            armed.ingest("web", pset(3), epoch=3)
        # The caller retries against a reopened warehouse (the service
        # does exactly this across a restart).
        reopened = Warehouse(tmp_path, policy=SMALL)
        reopened.ingest("web", pset(3), epoch=3)
        assert reopened.segments_total == 4
        expected = ProfileSet.merged([pset(e) for e in range(4)])
        assert reopened.query("web").to_bytes() == expected.to_bytes()


class TestCrashMidCompaction:
    def test_crash_after_file_keeps_inputs_live(self, tmp_path):
        expected = ProfileSet.merged([pset(e) for e in range(12)])
        armed = fill(tmp_path, 12, plan(
            FaultPoint("warehouse.compact", "crash", key="after-file",
                       attempts=(0,))))
        with pytest.raises(InjectedFault):
            armed.compact()

        reopened = Warehouse(tmp_path, policy=SMALL)
        # No commit happened: every raw segment is still live and the
        # half-written super-segment is an orphan.
        assert reopened.segments_total == 12
        assert reopened.compactions_total == 0
        assert reopened.query("web").to_bytes() == expected.to_bytes()
        reopened.gc()
        assert reopened.orphans_removed == 1
        assert reopened.query("web").to_bytes() == expected.to_bytes()

    def test_crash_after_log_supersedes_inputs_exactly_once(self, tmp_path):
        expected = ProfileSet.merged([pset(e) for e in range(12)])
        armed = fill(tmp_path, 12, plan(
            FaultPoint("warehouse.compact", "crash", key="after-log",
                       attempts=(1,))))
        with pytest.raises(InjectedFault):
            armed.compact()

        reopened = Warehouse(tmp_path, policy=SMALL)
        # The super-segment committed; its inputs are superseded (not
        # double-counted) even though their files were never unlinked.
        assert reopened.compactions_total == 1
        assert reopened.query("web").to_bytes() == expected.to_bytes()

        # Finishing the job from the clean state converges to the same
        # bytes as a never-crashed history, and the never-unlinked input
        # files (declared dead by the replayed log) get swept.
        reopened.compact()
        assert reopened.query("web").to_bytes() == expected.to_bytes()
        on_disk = {p.relative_to(tmp_path).as_posix()
                   for p in (tmp_path / "segments").rglob("*.ospb")}
        assert on_disk == reopened.index.live_files()

    def test_crashed_compaction_retried_matches_clean_run(self, tmp_path):
        clean = fill(tmp_path / "clean", 12)
        clean.compact()
        reference = clean.query("web").to_bytes()

        armed = fill(tmp_path / "crashy", 12, plan(
            FaultPoint("warehouse.compact", "crash", key="after-file",
                       attempts=(2,))))
        with pytest.raises(InjectedFault):
            armed.compact()
        recovered = Warehouse(tmp_path / "crashy", policy=SMALL)
        recovered.compact()
        assert recovered.query("web").to_bytes() == reference


class TestTornLogTail:
    def test_torn_last_record_loses_only_the_uncommitted(self, tmp_path):
        wh = fill(tmp_path, 4)
        wal = tmp_path / "wal.log"
        data = wal.read_bytes()
        # Tear the last committed line in half, as a crash mid-write
        # (plus lost directory sync) would.
        wal.write_bytes(data[:len(data) - 20])

        reopened = Warehouse(tmp_path, policy=SMALL)
        assert reopened.segments_total == 3
        assert reopened.log.truncated_bytes > 0
        expected = ProfileSet.merged([pset(e) for e in range(3)])
        assert reopened.query("web").to_bytes() == expected.to_bytes()
        # The torn segment's file is now an orphan; sweep it.
        reopened.gc()
        assert reopened.orphans_removed == 1

"""Tests for wait-state sample segments in the warehouse.

State profiles live beside latency profiles under a distinct segment
``kind``: they round-trip byte-identically, replay from the journal,
scrub like any other committed byte — and stay invisible to every
latency-only surface (query, compaction, gc, recent sets).
"""

import pytest

from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.sampling import StateProfile
from repro.warehouse import CompactionPolicy, Warehouse, WarehouseError

SMALL = CompactionPolicy(fanout=2, keep=(2, 2, 2))


def pset(samples):
    out = ProfileSet()
    for op, latencies in samples.items():
        prof = Profile(op, layer=Layer.FILESYSTEM)
        for latency in latencies:
            prof.add(latency)
        out.insert(prof)
    return out


def sprof(seed=0, intervals=4):
    out = StateProfile(name="state-samples", interval=1000.0)
    out.intervals = intervals
    out.add("blocked", "filesystem", "llseek", "sem:i_sem:3", 10 + seed)
    out.add("blocked", "filesystem", "read", "io:read", 5 + seed)
    out.add("running", "user", "-", "-", 2)
    return out


class TestIngestState:
    def test_round_trip_is_byte_identical(self, tmp_path):
        wh = Warehouse(tmp_path)
        original = sprof()
        meta = wh.ingest_state("web", original)
        assert meta.kind == "samples"
        assert meta.tier == 0
        back = wh.load_state(meta)
        assert back.to_bytes() == original.to_bytes()

    def test_ops_index_covers_sampled_layers_and_ops(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest_state("web", sprof())
        assert ("filesystem", "llseek") in meta.ops
        assert ("user", "-") in meta.ops

    def test_epochs_interleave_with_latency_segments(self, tmp_path):
        wh = Warehouse(tmp_path)
        first = wh.ingest("web", pset({"read": [100.0]}))
        second = wh.ingest_state("web", sprof())
        third = wh.ingest("web", pset({"read": [200.0]}))
        assert (first.epoch, second.epoch, third.epoch) == (0, 1, 2)

    def test_query_states_merges_history(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest_state("web", sprof(0))
        wh.ingest_state("web", sprof(1))
        merged = wh.query_states("web")
        assert merged.count("blocked", "filesystem", "llseek",
                            "sem:i_sem:3") == 21
        assert merged.intervals == 8

    def test_query_states_epoch_range(self, tmp_path):
        wh = Warehouse(tmp_path)
        for epoch in range(4):
            wh.ingest_state("web", sprof(epoch), epoch=epoch)
        window = wh.query_states("web", t0=1, t1=2)
        assert window.count("blocked", "filesystem", "read",
                            "io:read") == 5 + 1 + 5 + 2


class TestKindDiscipline:
    def test_segments_default_lists_only_latency_profiles(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest("web", pset({"read": [100.0]}))
        wh.ingest_state("web", sprof())
        assert len(wh.segments("web")) == 1
        assert len(wh.segments("web", kind="samples")) == 1
        assert len(wh.segments("web", kind=None)) == 2

    def test_latency_query_blind_to_state_segments(self, tmp_path):
        wh = Warehouse(tmp_path)
        wh.ingest_state("web", sprof())
        assert len(wh.query("web")) == 0

    def test_load_segment_refuses_state_kind(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest_state("web", sprof())
        with pytest.raises(WarehouseError, match="load_state"):
            wh.load_segment(meta)

    def test_load_state_refuses_latency_kind(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest("web", pset({"read": [100.0]}))
        with pytest.raises(WarehouseError):
            wh.load_state(meta)

    def test_compaction_and_gc_never_touch_state_segments(self, tmp_path):
        wh = Warehouse(tmp_path, policy=SMALL)
        for epoch in range(8):
            wh.ingest("web", pset({"read": [100.0 * (epoch + 1)]}))
            wh.ingest_state("web", sprof(epoch))
        before = [meta.file for meta in wh.segments("web", kind="samples")]
        wh.compact("web")
        wh.gc("web")
        after = wh.segments("web", kind="samples")
        assert [meta.file for meta in after] == before
        assert all(meta.tier == 0 for meta in after)
        # And the latency side actually compacted around them.
        assert wh.compactions_total > 0


class TestDurability:
    def test_state_segments_replay_from_journal(self, tmp_path):
        original = sprof()
        wh = Warehouse(tmp_path / "wh")
        wh.ingest("web", pset({"read": [100.0]}))
        wh.ingest_state("web", original)
        reopened = Warehouse(tmp_path / "wh")
        metas = reopened.segments("web", kind="samples")
        assert len(metas) == 1
        assert metas[0].kind == "samples"
        assert reopened.load_state(metas[0]).to_bytes() == \
            original.to_bytes()
        assert len(reopened.segments("web")) == 1

    def test_scrub_verifies_state_segments(self, tmp_path):
        wh = Warehouse(tmp_path / "wh")
        wh.ingest("web", pset({"read": [100.0]}))
        wh.ingest_state("web", sprof())
        report = wh.scrub()
        assert report.clean
        assert report.scanned == 2

    def test_scrub_detects_state_segment_corruption(self, tmp_path):
        wh = Warehouse(tmp_path / "wh")
        meta = wh.ingest_state("web", sprof())
        path = wh.root / meta.file
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF
        path.write_bytes(bytes(data))
        report = wh.scrub()
        assert not report.clean
        assert report.corrupt == 1

"""Tests for the ``osprof db sql`` analytics engine.

Three layers of guarantees:

* the parser/validator turns every malformed query into a
  :class:`QueryError` naming the problem (never a traceback),
* aggregation matches a naive per-row reference exactly — count by
  integer arithmetic, ``total_latency()`` bit-for-bit via the shared
  Shewchuk accumulation (a hypothesis property),
* the single-group aggregate path equals ``Warehouse.query`` — the
  engine is a projection of the same merge, not a second opinion.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import earth_movers_distance
from repro.core.buckets import BucketSpec
from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.warehouse import (ColumnarSegment, QueryError, Warehouse,
                             execute_sql, parse_sql)


def pset(samples, layer=Layer.FILESYSTEM):
    out = ProfileSet()
    for op, latencies in samples.items():
        prof = Profile(op, layer=layer)
        for latency in latencies:
            prof.add(latency)
        out.insert(prof)
    return out


@pytest.fixture
def wh(tmp_path):
    """Two sources, two epochs each, mixed ops and layers."""
    wh = Warehouse(tmp_path)
    wh.ingest("web-1", pset({"read": [100.0] * 6, "write": [900.0] * 2}),
              epoch=0)
    wh.ingest("web-1", pset({"read": [120.0] * 4,
                             "llseek": [10.0] * 8}, layer=Layer.USER),
              epoch=1)
    wh.ingest("db-1", pset({"read": [5000.0] * 3, "fsync": [2e6] * 2}),
              epoch=0)
    wh.save_baseline("clean", wh.query("web-1"))
    return wh


class TestParseErrors:
    @pytest.mark.parametrize("query", [
        "",
        "SELEKT op",
        "SELECT",
        "SELECT op FROM segments",
        "SELECT op,",
        "SELECT op GROUP BY",
        "SELECT op WHERE",
        "SELECT op WHERE op =",
        "SELECT op WHERE op = read",          # unquoted string
        "SELECT op GROUP BY op LIMIT -1",
        "SELECT op GROUP BY op LIMIT many",
        "SELECT op GROUP BY op ORDER BY",
        "SELECT count( GROUP BY op",
        "SELECT op GROUP BY op extra",        # trailing input
        "SELECT op WHERE op IN 'read'",       # IN needs a list
        "SELECT 'lit'",                       # literal is not a column
    ])
    def test_malformed_is_query_error(self, query):
        with pytest.raises(QueryError):
            parse_sql(query)

    @pytest.mark.parametrize("query,needle", [
        ("SELECT bogus", "unknown column"),
        ("SELECT bogus()", "unknown aggregate"),
        ("SELECT op, count()", "GROUP BY"),            # mixing needs grouping
        ("SELECT count() GROUP BY op ORDER BY layer", "ORDER BY"),
        ("SELECT p0()", "percentile"),
        ("SELECT p100.5()", "percentile"),
        ("SELECT emd()", "baseline"),
        ("SELECT emd('b') GROUP BY layer", "op"),      # emd needs op grouping
        ("SELECT p99_drift('b') GROUP BY source", "op"),
        ("SELECT count() WHERE epoch = 'x'", "mismatch"),
        ("SELECT count() WHERE op = 3", "mismatch"),
        ("SELECT min_latency(), bucket GROUP BY bucket", "bucket"),
    ])
    def test_static_errors_name_the_problem(self, query, needle):
        with pytest.raises(QueryError, match=needle):
            parse_sql(query)

    def test_bare_projection_parses(self):
        stmt = parse_sql("SELECT source, op ORDER BY op LIMIT 5")
        assert [i.name for i in stmt.items] == ["source", "op"]
        assert stmt.limit == 5

    def test_keywords_are_case_insensitive(self):
        a = parse_sql("select op, count() group by op order by op limit 2")
        b = parse_sql("SELECT op, count() GROUP BY op ORDER BY op LIMIT 2")
        assert a == b


class TestExecution:
    def test_unknown_column_is_clean_error(self, wh):
        with pytest.raises(QueryError, match="unknown column"):
            execute_sql(wh, "SELECT nope, count() GROUP BY nope")

    def test_missing_baseline_is_value_error(self, wh):
        with pytest.raises(ValueError, match="ghost"):
            execute_sql(wh, "SELECT op, emd('ghost') GROUP BY op")

    def test_empty_where_returns_no_rows(self, wh):
        result = execute_sql(
            wh, "SELECT op, count() WHERE source = 'nope' GROUP BY op")
        assert result.rows == []

    def test_aggregate_only_on_empty_scan_returns_zero(self, tmp_path):
        empty = Warehouse(tmp_path / "empty")
        result = execute_sql(empty, "SELECT count()")
        assert result.rows == [[0]]

    def test_count_and_grouping(self, wh):
        result = execute_sql(
            wh, "SELECT source, count() GROUP BY source ORDER BY source")
        assert result.columns == ["source", "count()"]
        assert result.rows == [["db-1", 5], ["web-1", 20]]

    def test_where_filters_rows(self, wh):
        result = execute_sql(
            wh, "SELECT op, count() WHERE source = 'web-1' AND epoch >= 1 "
                "GROUP BY op ORDER BY op")
        assert result.rows == [["llseek", 8], ["read", 4]]

    def test_in_and_not(self, wh):
        result = execute_sql(
            wh, "SELECT op, count() WHERE op IN ('fsync', 'llseek') "
                "GROUP BY op ORDER BY op")
        assert result.rows == [["fsync", 2], ["llseek", 8]]
        result = execute_sql(
            wh, "SELECT op, count() WHERE NOT op IN ('read', 'write') "
                "AND source != 'db-1' GROUP BY op")
        assert result.rows == [["llseek", 8]]

    def test_order_by_aggregate_desc_with_limit(self, wh):
        result = execute_sql(
            wh, "SELECT op, count() GROUP BY op "
                "ORDER BY count() DESC, op LIMIT 2")
        assert result.rows == [["read", 13], ["llseek", 8]]

    def test_total_latency_matches_warehouse_query(self, wh):
        result = execute_sql(
            wh, "SELECT total_latency() WHERE source = 'web-1'")
        assert result.rows[0][0] == wh.query("web-1").total_latency()

    def test_mean_is_total_over_count(self, wh):
        rows = execute_sql(
            wh, "SELECT op, count(), total_latency(), mean_latency() "
                "GROUP BY op").rows
        for _, count, total, mean in rows:
            assert mean == total / count

    def test_min_max_latency(self, wh):
        result = execute_sql(
            wh, "SELECT min_latency(), max_latency() WHERE op = 'read'")
        merged = ProfileSet.merged(
            [wh.load_segment(m) for m in wh.segments()])
        assert result.rows[0] == [merged["read"].histogram.min_latency,
                                  merged["read"].histogram.max_latency]

    def test_percentile_is_bucket_midpoint(self, wh):
        spec = BucketSpec()
        [[p50]] = execute_sql(
            wh, "SELECT p50() WHERE op = 'fsync'").rows
        assert p50 == spec.mid(spec.bucket(2e6))

    def test_peak_bucket_is_modal(self, wh):
        spec = BucketSpec()
        [[peak]] = execute_sql(
            wh, "SELECT peak_bucket() WHERE op = 'llseek'").rows
        assert peak == spec.bucket(10.0)

    def test_emd_matches_compare_module(self, wh):
        baseline = wh.load_baseline("clean")
        rows = execute_sql(
            wh, "SELECT op, emd('clean') WHERE source = 'web-1' "
                "GROUP BY op ORDER BY op").rows
        merged = wh.query("web-1")
        for op, value in rows:
            assert value == pytest.approx(earth_movers_distance(
                merged[op], baseline[op]))

    def test_drift_is_zero_against_itself(self, wh):
        rows = execute_sql(
            wh, "SELECT op, p50_drift('clean') WHERE source = 'web-1' "
                "GROUP BY op").rows
        assert all(value == 0.0 for _, value in rows)

    def test_baseline_gap_yields_null(self, wh):
        # db-1's fsync is absent from the web-1 baseline: NULL, not a
        # crash, and NULL sorts after every real value.
        rows = execute_sql(
            wh, "SELECT op, emd('clean') GROUP BY op "
                "ORDER BY emd('clean')").rows
        assert rows[-1] == ["fsync", None]

    def test_bucket_level_rows_expand_per_bucket(self, wh):
        rows = execute_sql(
            wh, "SELECT op, bucket, count WHERE op = 'read' "
                "AND source = 'db-1'").rows
        spec = BucketSpec()
        assert rows == [["read", spec.bucket(5000.0), 3]]

    def test_bucket_level_total_is_midpoint_estimate(self, wh):
        spec = BucketSpec()
        [[total]] = execute_sql(
            wh, "SELECT total_latency() WHERE op = 'llseek' "
                "AND bucket >= 0").rows
        assert total == spec.mid(spec.bucket(10.0)) * 8

    def test_raw_projection_with_order(self, wh):
        result = execute_sql(
            wh, "SELECT source, epoch, op WHERE op = 'read' "
                "ORDER BY source, epoch")
        assert result.rows == [["db-1", 0, "read"], ["web-1", 0, "read"],
                               ["web-1", 1, "read"]]

    def test_as_dict_shape(self, wh):
        reply = execute_sql(wh, "SELECT count()").as_dict()
        assert set(reply) == {"columns", "rows"}


latency_strat = st.lists(st.floats(min_value=0.5, max_value=1e9),
                         min_size=1, max_size=12)
segment_strat = st.dictionaries(
    st.sampled_from(["read", "write", "llseek", "fsync"]),
    latency_strat, min_size=1, max_size=3)


class _Meta:
    def __init__(self, source, epoch, resid):
        self.source, self.epoch = source, epoch
        self.epoch_end, self.tier = epoch, 0
        self.resid = resid


class _FakeWarehouse:
    """In-memory stand-in exposing the scan interface execute_sql uses."""

    def __init__(self, segments):
        self._by_source = {}
        self._cols = {}
        for source, epoch, ps in segments:
            resid = tuple(
                (prof.operation, tuple(prof.histogram.latency_residual()))
                for prof in ps if prof.histogram.latency_residual())
            meta = _Meta(source, epoch, resid)
            self._by_source.setdefault(source, []).append(meta)
            self._cols[id(meta)] = ColumnarSegment.from_bytes(ps.to_bytes())

    def sources(self):
        return sorted(self._by_source)

    def segments(self, source):
        return self._by_source[source]

    def load_columns(self, meta):
        return self._cols[id(meta)]

    def load_baseline(self, name):
        raise ValueError(f"no baseline named {name!r}")


class TestGroupByProperty:
    @given(st.lists(segment_strat, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_naive_reference(self, sample_sets):
        segments = [("src-%d" % (i % 2), i, pset(samples))
                    for i, samples in enumerate(sample_sets)]
        fake = _FakeWarehouse(segments)
        rows = execute_sql(
            fake, "SELECT source, op, count(), total_latency() "
                  "GROUP BY source, op ORDER BY source, op").rows

        # Naive reference: walk every (segment, profile) row, collect
        # counts by integer addition and every profile's exact partials,
        # then round once with math.fsum — the same exactness contract
        # the engine promises.
        counts, partials = {}, {}
        for source, _, ps in segments:
            for prof in ps:
                key = (source, prof.operation)
                counts[key] = counts.get(key, 0) + prof.total_ops
                partials.setdefault(key, []).extend(
                    prof.histogram._latency_partials)
        want = [[source, op, counts[(source, op)],
                 math.fsum(partials[(source, op)])]
                for source, op in sorted(counts)]
        assert rows == want

    @given(st.lists(segment_strat, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_ungrouped_count_is_total_ops(self, sample_sets):
        segments = [("src", i, pset(samples))
                    for i, samples in enumerate(sample_sets)]
        fake = _FakeWarehouse(segments)
        [[count]] = execute_sql(fake, "SELECT count()").rows
        assert count == sum(ps.total_ops() for _, _, ps in segments)

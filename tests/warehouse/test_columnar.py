"""Tests for the columnar segment engine behind warehouse queries.

The engine exists for speed, but its license to exist is byte
determinism: decoding a segment into flat arrays and merging those
arrays must reproduce ``ProfileSet.merged`` over the decoded sets
bit-for-bit — through layer/op filters, resid folding, tiered
compaction, and a directory reopen.  These tests pin that contract,
plus the decoded-columns cache that makes repeated queries cheap.
"""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import BucketSpec
from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.warehouse import (ColumnarSegment, CompactionPolicy, Warehouse,
                             WarehouseError, merged_profile_set)

SMALL = CompactionPolicy(fanout=2, keep=(2, 2, 2))

op_names = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
latency_lists = st.lists(st.floats(min_value=0, max_value=1e14),
                         min_size=1, max_size=40)
layers = st.sampled_from([Layer.USER, Layer.FILESYSTEM, Layer.DRIVER,
                          Layer.NETWORK])


@st.composite
def profile_sets(draw):
    pset = ProfileSet(name=draw(st.text(alphabet="abcxyz", max_size=8)),
                      spec=BucketSpec(draw(st.integers(min_value=1,
                                                       max_value=4))),
                      attributes=draw(st.dictionaries(
                          st.text(alphabet="kv_", min_size=1, max_size=6),
                          st.text(alphabet="kv_", max_size=6),
                          max_size=3)))
    samples = draw(st.dictionaries(op_names, latency_lists, max_size=6))
    for (op, latencies), layer in zip(
            samples.items(), (draw(layers) for _ in samples)):
        for lat in latencies:
            pset.profile(op, layer).add(lat)
    return pset


def random_pset(seed):
    rng = random.Random(seed)
    layer_pool = (Layer.FILESYSTEM, Layer.USER, Layer.DRIVER)
    out = ProfileSet()
    for op in rng.sample(["read", "write", "llseek", "readdir", "fsync",
                          "mmap", "open"], rng.randint(1, 4)):
        prof = Profile(op, layer=rng.choice(layer_pool))
        for _ in range(rng.randint(1, 40)):
            prof.add(rng.uniform(1.0, 1e6))
        out.insert(prof)
    return out


class TestDecode:
    @given(profile_sets())
    @settings(max_examples=60, deadline=None)
    def test_decode_reencodes_byte_identical(self, pset):
        blob = pset.to_bytes()
        cols = ColumnarSegment.from_bytes(blob)
        assert cols.to_profile_set().to_bytes() == blob

    @given(profile_sets())
    @settings(max_examples=30, deadline=None)
    def test_decode_matches_reference_decoder(self, pset):
        blob = pset.to_bytes()
        assert ColumnarSegment.from_bytes(blob).to_profile_set() \
            == ProfileSet.from_bytes(blob)

    def test_crc_is_the_stored_trailer(self):
        blob = random_pset(1).to_bytes()
        cols = ColumnarSegment.from_bytes(blob)
        assert cols.crc == int.from_bytes(blob[-4:], "little")
        assert cols.crc == zlib.crc32(blob[8:-4])
        assert cols.nbytes == len(blob)

    @pytest.mark.parametrize("mangle", [
        lambda b: b"XXXXXXXX" + b[8:],            # bad magic
        lambda b: b[:12],                          # truncated header
        lambda b: b[:-1],                          # truncated trailer
        lambda b: b + b"\x00",                     # trailing garbage
        lambda b: b[:-4] + bytes(4),               # wrong CRC
        lambda b: b[:20] + bytes([b[20] ^ 0xFF]) + b[21:],  # flipped byte
    ])
    def test_corruption_raises_value_error(self, mangle):
        blob = random_pset(2).to_bytes()
        with pytest.raises(ValueError):
            ColumnarSegment.from_bytes(mangle(blob))


class TestColumnarMerge:
    def segments(self, psets):
        return [(ColumnarSegment.from_bytes(p.to_bytes()), {})
                for p in psets]

    def test_merge_matches_profileset_merged(self):
        # Without resid sidecars the reference is a merge of the decoded
        # segments (rounded totals), exactly like the legacy query path.
        psets = [random_pset(seed) for seed in range(8)]
        merged = merged_profile_set(self.segments(psets))
        want = ProfileSet.merged([ProfileSet.from_bytes(p.to_bytes())
                                  for p in psets])
        assert merged.to_bytes() == want.to_bytes()

    def test_resid_components_restore_sum_exactness(self):
        # With each segment's residual folded back in, the merge is
        # byte-identical to merging the *original* in-memory sets,
        # whose Shewchuk partials never saw the encode rounding.
        psets = [random_pset(seed) for seed in range(8)]
        pairs = []
        for p in psets:
            resid = {prof.operation: tuple(prof.histogram
                                           .latency_residual())
                     for prof in p}
            pairs.append((ColumnarSegment.from_bytes(p.to_bytes()),
                          {op: comps for op, comps in resid.items()
                           if comps}))
        merged = merged_profile_set(pairs)
        assert merged.to_bytes() == ProfileSet.merged(psets).to_bytes()

    @pytest.mark.parametrize("layer,op", [
        (Layer.FILESYSTEM, None), (None, "read"),
        (Layer.USER, "llseek"), (Layer.NETWORK, None)])
    def test_filtered_merge_matches_legacy_filtering(self, layer, op):
        from repro.warehouse.warehouse import _filtered
        psets = [random_pset(seed) for seed in range(6)]
        merged = merged_profile_set(self.segments(psets),
                                    layer=layer, op=op)
        want = ProfileSet.merged([_filtered(p, layer, op) for p in psets])
        assert merged.to_bytes() == want.to_bytes()

    def test_empty_merge_is_default_empty_set(self):
        assert merged_profile_set([]).to_bytes() \
            == ProfileSet.merged([]).to_bytes()

    def test_resolution_mismatch_raises(self):
        a = ProfileSet(spec=BucketSpec(2))
        a.profile("read", Layer.FILESYSTEM).add(10.0)
        b = ProfileSet(spec=BucketSpec(3))
        b.profile("read", Layer.FILESYSTEM).add(10.0)
        with pytest.raises(ValueError, match="resolution"):
            merged_profile_set(self.segments([a, b]))


class TestEngineParity:
    """columnar and legacy engines agree byte-for-byte on disk state."""

    def fill(self, wh, seeds):
        for epoch, seed in enumerate(seeds):
            wh.ingest("web", random_pset(seed), epoch=epoch)

    @pytest.mark.parametrize("seed0", [100, 200, 300])
    def test_query_parity(self, tmp_path, seed0):
        wh = Warehouse(tmp_path, policy=SMALL)
        self.fill(wh, range(seed0, seed0 + 12))
        legacy = Warehouse(tmp_path, policy=SMALL, engine="legacy")
        for kwargs in ({}, {"op": "read"}, {"layer": Layer.USER},
                       {"t0": 3, "t1": 9},
                       {"layer": Layer.FILESYSTEM, "op": "write"}):
            assert wh.query("web", **kwargs).to_bytes() \
                == legacy.query("web", **kwargs).to_bytes()

    def test_parity_through_compaction_and_reopen(self, tmp_path):
        raw = [random_pset(seed) for seed in range(40, 56)]
        wh = Warehouse(tmp_path, policy=SMALL)
        for epoch, pset in enumerate(raw):
            wh.ingest("web", pset, epoch=epoch)
        while wh.compact():
            pass
        reopened = Warehouse(tmp_path, policy=SMALL)
        legacy = Warehouse(tmp_path, policy=SMALL, engine="legacy")
        want = ProfileSet.merged(raw).to_bytes()
        assert reopened.query("web").to_bytes() == want
        assert legacy.query("web").to_bytes() == want

    def test_compaction_outputs_identical_across_engines(self, tmp_path):
        for engine in ("columnar", "legacy"):
            wh = Warehouse(tmp_path / engine, policy=SMALL, engine=engine)
            self.fill(wh, range(70, 82))
            while wh.compact():
                pass
        columnar = Warehouse(tmp_path / "columnar", policy=SMALL)
        legacy = Warehouse(tmp_path / "legacy", policy=SMALL)
        cols_segs = columnar.segments("web")
        legacy_segs = legacy.segments("web")
        assert [(m.tier, m.epoch, m.epoch_end) for m in cols_segs] \
            == [(m.tier, m.epoch, m.epoch_end) for m in legacy_segs]
        for a, b in zip(cols_segs, legacy_segs):
            assert columnar.load_segment(a).to_bytes() \
                == legacy.load_segment(b).to_bytes()

    def test_bad_engine_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="engine"):
            Warehouse(tmp_path, engine="vectorized")


class TestColumnCache:
    def test_repeat_queries_hit_the_cache(self, tmp_path):
        wh = Warehouse(tmp_path)
        for epoch in range(4):
            wh.ingest("web", random_pset(epoch), epoch=epoch)
        wh.query("web")
        assert (wh.cache_hits_total, wh.cache_misses_total) == (0, 4)
        wh.query("web")
        assert (wh.cache_hits_total, wh.cache_misses_total) == (4, 4)
        wh.query("web", op="read")  # postings narrow the selection
        assert wh.cache_misses_total == 4
        assert wh.cache_hits_total >= 4

    def test_compaction_invalidates_consumed_segments(self, tmp_path):
        wh = Warehouse(tmp_path, policy=SMALL)
        for epoch in range(6):
            wh.ingest("web", random_pset(epoch), epoch=epoch)
        wh.query("web")
        wh.compact()
        live = {m.seg_id for m in wh.segments("web")}
        assert set(wh._columns) <= live

    def test_gc_invalidates_evicted_segments(self, tmp_path):
        wh = Warehouse(tmp_path, policy=CompactionPolicy(fanout=2,
                                                         keep=(1, 1, 1)))
        for epoch in range(10):
            wh.ingest("web", random_pset(epoch), epoch=epoch)
        while wh.compact():
            pass
        wh.query("web")
        wh.gc()
        live = {m.seg_id for m in wh.segments("web")}
        assert set(wh._columns) <= live

    def test_cache_hit_validates_the_trailer_crc(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest("web", random_pset(5))
        wh.query("web")
        # Replace the segment file behind the cache's back: the stale
        # entry must be dropped, not served.
        replacement = random_pset(6).to_bytes()
        (tmp_path / meta.file).write_bytes(replacement)
        misses = wh.cache_misses_total
        cols = wh.load_columns(wh.segments("web")[0])
        assert wh.cache_misses_total == misses + 1
        assert cols.to_profile_set().to_bytes() == replacement

    def test_truncated_file_raises_warehouse_error(self, tmp_path):
        wh = Warehouse(tmp_path)
        meta = wh.ingest("web", random_pset(7))
        blob = (tmp_path / meta.file).read_bytes()
        (tmp_path / meta.file).write_bytes(blob[:2])
        wh._columns.clear()
        with pytest.raises(WarehouseError):
            wh.load_columns(wh.segments("web")[0])

    def test_legacy_engine_does_not_populate_the_cache(self, tmp_path):
        wh = Warehouse(tmp_path, engine="legacy")
        wh.ingest("web", random_pset(8))
        wh.query("web")
        assert not wh._columns
        assert (wh.cache_hits_total, wh.cache_misses_total) == (0, 0)

"""Scrub, quarantine, mirror double-commit, and mirror repair.

The repair plane's contract: ``scrub`` turns silent at-rest damage
into loud quarantine (exit 3 at the CLI), and ``scrub(repair=True)``
restores each quarantined segment from the mirror tree only after the
mirror bytes re-verify byte-identically against the commit record.
"""

import pytest

from repro.core.profileset import ProfileSet
from repro.warehouse import CompactionPolicy, Warehouse, WarehouseError

SMALL = CompactionPolicy(fanout=2, keep=(2, 2, 2))


def pset(epoch):
    return ProfileSet.from_operation_latencies(
        {"read": [100.0 + epoch] * 4, "write": [40.0 + epoch] * 2})


def fill(root, epochs, mirror=None):
    wh = Warehouse(root, policy=SMALL, mirror_dir=mirror)
    for epoch in range(epochs):
        wh.ingest("web", pset(epoch))
    return wh


def flip_byte(path, offset=10):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestScrubDetection:
    def test_clean_warehouse_is_clean(self, tmp_path):
        wh = fill(tmp_path / "wh", 4)
        report = wh.scrub()
        assert report.clean
        assert report.scanned == 4
        assert report.corrupt == 0
        assert report.journal_records == 4
        assert wh.scrub_scanned_total == 4

    def test_bit_flip_is_detected_and_quarantined(self, tmp_path):
        wh = fill(tmp_path / "wh", 3)
        victim = wh.segments("web")[1]
        flip_byte(wh.root / victim.file)
        report = wh.scrub()
        assert not report.clean
        assert report.corrupt == 1
        assert report.repaired == 0
        assert wh.scrub_corrupt_total == 1
        # The damaged bytes were moved aside, not served and not lost.
        assert not (wh.root / victim.file).exists()
        quarantined = wh.root / (victim.file + ".quarantined")
        assert quarantined.exists()
        # gc must not reap the evidence.
        wh.gc()
        assert quarantined.exists()

    def test_truncation_and_missing_detected(self, tmp_path):
        wh = fill(tmp_path / "wh", 3)
        segs = wh.segments("web")
        path0 = wh.root / segs[0].file
        path0.write_bytes(path0.read_bytes()[:-3])
        (wh.root / segs[1].file).unlink()
        report = wh.scrub()
        assert report.corrupt == 2
        assert any("missing" in issue for issue in report.issues)

    def test_crc_mismatch_against_journal_record(self, tmp_path):
        # A substituted payload that is itself a valid encoding still
        # fails: the journal's recorded CRC is the truth.
        wh = fill(tmp_path / "wh", 2)
        segs = wh.segments("web")
        imposter = pset(99).to_bytes()
        (wh.root / segs[0].file).write_bytes(imposter)
        report = wh.scrub()
        assert report.corrupt >= 1

    def test_journal_tail_damage_reported(self, tmp_path):
        wh = fill(tmp_path / "wh", 2)
        with open(wh.root / "wal.log", "ab") as f:
            f.write(b"torn garbage")
        report = Warehouse(tmp_path / "wh", policy=SMALL).scrub()
        # Reopen already truncated the tail (recover()), so scrub a
        # *non-reopened* handle to see the raw state instead:
        assert report.clean  # reopen repaired it — that is the contract
        with open(wh.root / "wal.log", "ab") as f:
            f.write(b"torn garbage")
        report = wh.scrub()
        assert report.journal_bad_bytes == len(b"torn garbage")
        assert not report.clean


class TestMirror:
    def test_double_commit_writes_both_trees(self, tmp_path):
        wh = fill(tmp_path / "wh", 3, mirror=tmp_path / "mir")
        for meta in wh.segments("web"):
            primary = (wh.root / meta.file).read_bytes()
            assert (wh.mirror / meta.file).read_bytes() == primary

    def test_compaction_outputs_mirrored_and_inputs_swept(self, tmp_path):
        wh = fill(tmp_path / "wh", 12, mirror=tmp_path / "mir")
        created = wh.compact()
        assert created
        # Every *live* output is mirrored; intermediate outputs that a
        # later round already superseded are swept from both trees.
        for meta in wh.segments("web"):
            assert (wh.mirror / meta.file).exists()
        wh.gc()
        live = {meta.file for meta in wh.segments("web")}
        on_mirror = {p.relative_to(wh.mirror).as_posix()
                     for p in (wh.mirror / "segments").rglob("*.ospb")}
        assert on_mirror == live

    def test_repair_restores_byte_identical(self, tmp_path):
        wh = fill(tmp_path / "wh", 4, mirror=tmp_path / "mir")
        before = wh.query("web").to_bytes()
        victim = wh.segments("web")[2]
        pristine = (wh.root / victim.file).read_bytes()
        flip_byte(wh.root / victim.file)
        report = wh.scrub(repair=True)
        assert report.corrupt == 1
        assert report.repaired == 1
        assert report.clean
        assert (wh.root / victim.file).read_bytes() == pristine
        assert not (wh.root / (victim.file
                               + ".quarantined")).exists()
        assert wh.query("web").to_bytes() == before
        # Re-scrub confirms: nothing left to flag.
        assert wh.scrub().clean

    def test_repair_rejects_damaged_mirror(self, tmp_path):
        wh = fill(tmp_path / "wh", 2, mirror=tmp_path / "mir")
        victim = wh.segments("web")[0]
        flip_byte(wh.root / victim.file)
        flip_byte(wh.mirror / victim.file)  # mirror rotted too
        report = wh.scrub(repair=True)
        assert report.corrupt == 1
        assert report.repaired == 0
        assert not report.clean
        assert any("mirror" in issue for issue in report.issues)
        # Evidence retained for forensics.
        assert (wh.root / (victim.file + ".quarantined")).exists()

    def test_repair_without_mirror_flags_only(self, tmp_path):
        wh = fill(tmp_path / "wh", 2)
        victim = wh.segments("web")[0]
        flip_byte(wh.root / victim.file)
        report = wh.scrub(repair=True)
        assert report.corrupt == 1
        assert report.repaired == 0

    def test_scrub_fixes_query_after_repair(self, tmp_path):
        # End to end: damage makes query raise, repair makes it serve.
        wh = fill(tmp_path / "wh", 3, mirror=tmp_path / "mir")
        expect = wh.query("web").to_bytes()
        victim = wh.segments("web")[1]
        flip_byte(wh.root / victim.file)
        fresh = Warehouse(tmp_path / "wh", policy=SMALL,
                          mirror_dir=tmp_path / "mir")
        with pytest.raises(WarehouseError):
            fresh.query("web")
        fresh.scrub(repair=True)
        assert fresh.query("web").to_bytes() == expect


class TestBackwardCompat:
    def test_old_records_without_crc_still_scrub(self, tmp_path):
        # Strip the crc field from every journal record, the way a
        # pre-upgrade warehouse would look, and verify scrub still
        # passes on content checks alone.
        import json
        import zlib
        wh = fill(tmp_path / "wh", 3)
        lines = (wh.root / "wal.log").read_bytes().splitlines()
        rewritten = [lines[0]]
        for line in lines[1:]:
            record = json.loads(line.split(b" ", 1)[1])
            record.pop("crc", None)
            payload = json.dumps(record, sort_keys=True,
                                 separators=(",", ":")).encode()
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            rewritten.append(b"%08x " % crc + payload)
        (wh.root / "wal.log").write_bytes(b"\n".join(rewritten) + b"\n")
        old = Warehouse(tmp_path / "wh", policy=SMALL)
        assert old.segments("web")[0].crc is None
        assert old.scrub().clean
        # But damage is still caught by the size + decode checks.
        flip_byte(old.root / old.segments("web")[0].file)
        assert old.scrub().corrupt == 1

"""Tests for the warehouse's CRC-framed commit journal."""

import pytest

from repro.warehouse.log import LogError, SegmentLog


def records(n, start=0):
    return [{"rec": "segment", "id": i, "source": "s", "tier": 0,
             "epoch": i, "span": 1, "file": f"f{i}", "bytes": 10,
             "ops": [["filesystem", "read"]], "inputs": []}
            for i in range(start, start + n)]


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        log = SegmentLog(tmp_path / "wal.log")
        for record in records(5):
            log.append(record)
        assert log.replay() == records(5)

    def test_replay_survives_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(3):
            log.append(record)
        assert SegmentLog(path).replay() == records(3)

    def test_append_after_reopen_extends(self, tmp_path):
        path = tmp_path / "wal.log"
        SegmentLog(path).append(records(1)[0])
        log = SegmentLog(path)
        log.append(records(1, start=1)[0])
        assert log.replay() == records(2)

    def test_empty_log_replays_empty(self, tmp_path):
        log = SegmentLog(tmp_path / "wal.log")
        assert log.replay() == []
        assert log.recover() == []

    def test_canonical_encoding_is_key_order_independent(self, tmp_path):
        log = SegmentLog(tmp_path / "wal.log")
        log.append({"b": 2, "a": 1})
        log.append({"a": 1, "b": 2})
        first, second = log.path.read_bytes().splitlines()[1:]
        assert first == second


class TestDamage:
    def test_bad_header_is_loud(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"not a journal\n")
        with pytest.raises(LogError):
            SegmentLog(path).replay()

    def test_torn_tail_is_distrusted(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(3):
            log.append(record)
        # A crash mid-append: half a line, no newline.
        with open(path, "ab") as f:
            f.write(b"deadbeef {\"rec\":")
        assert SegmentLog(path).replay() == records(3)

    def test_recover_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(2):
            log.append(record)
        good_size = path.stat().st_size
        with open(path, "ab") as f:
            f.write(b"garbage tail")
        fresh = SegmentLog(path)
        assert fresh.recover() == records(2)
        assert fresh.truncated_bytes == len(b"garbage tail")
        assert path.stat().st_size == good_size
        # Appends after recovery land on a clean boundary.
        fresh.append(records(1, start=2)[0])
        assert SegmentLog(path).replay() == records(3)

    def test_corrupt_line_stops_replay_there(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(4):
            log.append(record)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one payload byte of the third record: CRC must catch it,
        # and everything after the damage is distrusted too.
        damaged = bytearray(lines[3])
        damaged[-5] ^= 0x01
        path.write_bytes(b"".join(lines[:3] + [bytes(damaged)] + lines[4:]))
        assert SegmentLog(path).replay() == records(2)

    def test_bad_crc_hex_is_damage_not_crash(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        log.append(records(1)[0])
        with open(path, "ab") as f:
            f.write(b"zzzzzzzz {\"rec\":\"segment\"}\n")
        assert SegmentLog(path).replay() == records(1)

    def test_non_dict_record_is_rejected(self, tmp_path):
        import zlib
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        log.append(records(1)[0])
        payload = b"[1,2,3]"
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        with open(path, "ab") as f:
            f.write(b"%08x " % crc + payload + b"\n")
        assert SegmentLog(path).replay() == records(1)


def _final_frame_length(tmp_path):
    """Byte length of the last committed frame in a 3-record journal."""
    path = tmp_path / "probe.log"
    log = SegmentLog(path)
    for record in records(3):
        log.append(record)
    return len(path.read_bytes().splitlines(keepends=True)[-1])


class TestEveryTornByte:
    """Exhaustive torn-tail recovery: a crash can cut the final append
    at *any* byte, and every single cut must recover to exactly the
    records committed before it."""

    @pytest.mark.parametrize("cut", range(140))
    def test_truncated_at_every_boundary(self, tmp_path, cut):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(3):
            log.append(record)
        data = path.read_bytes()
        frames = data.splitlines(keepends=True)
        final = frames[-1]
        if cut >= len(final):
            pytest.skip(f"final frame is only {len(final)} bytes")
        # Tear the last frame: keep `cut` of its bytes.
        path.write_bytes(b"".join(frames[:-1]) + final[:cut])
        fresh = SegmentLog(path)
        recovered = fresh.recover()
        assert recovered == records(2), f"cut at byte {cut}"
        # The distrusted tail is gone; the next append is readable.
        fresh.append(records(1, start=9)[0])
        assert SegmentLog(path).replay() == records(2) + \
            records(1, start=9)

    def test_parametrization_covers_the_whole_frame(self, tmp_path):
        # Guard: if the record encoding grows past the parametrized
        # range, widen it — silent partial coverage defeats the point.
        assert _final_frame_length(tmp_path) <= 140


class TestRecoverIdempotence:
    def test_recover_twice_equals_once(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(4):
            log.append(record)
        with open(path, "ab") as f:
            f.write(b"9999 torn")
        once = SegmentLog(path)
        first = once.recover()
        size_after_first = path.stat().st_size
        twice = SegmentLog(path)
        second = twice.recover()
        assert first == second == records(4)
        assert path.stat().st_size == size_after_first
        assert twice.truncated_bytes == 0  # nothing left to cut


class TestVerify:
    def test_clean_log(self, tmp_path):
        log = SegmentLog(tmp_path / "wal.log")
        for record in records(3):
            log.append(record)
        assert log.verify() == (3, 0)

    def test_verify_counts_but_does_not_truncate(self, tmp_path):
        path = tmp_path / "wal.log"
        log = SegmentLog(path)
        for record in records(2):
            log.append(record)
        with open(path, "ab") as f:
            f.write(b"bad tail")
        size = path.stat().st_size
        assert SegmentLog(path).verify() == (2, len(b"bad tail"))
        assert path.stat().st_size == size

"""docs/FORMATS.md stays in sync with the codec implementation.

The spec's worked hex example is extracted from the document itself and
decoded with ``ProfileSet.from_bytes``; the documented field values must
come out, and re-encoding must reproduce the documented bytes. If the
codec ever changes shape, this fails until the spec is updated.
"""

import re
from pathlib import Path

import pytest

from repro.core.profileset import ProfileSet

FORMATS_MD = Path(__file__).resolve().parents[2] / "docs" / "FORMATS.md"


def worked_example_bytes() -> bytes:
    text = FORMATS_MD.read_text()
    match = re.search(
        r"<!-- worked-example-hex -->\s*```\n(.*?)```", text, re.DOTALL)
    assert match, "worked-example-hex block missing from FORMATS.md"
    return bytes.fromhex("".join(match.group(1).split()))


def test_worked_example_is_113_bytes():
    assert len(worked_example_bytes()) == 113


def test_worked_example_decodes_to_documented_profile():
    pset = ProfileSet.from_bytes(worked_example_bytes())
    assert pset.name == "demo"
    assert pset.attributes == {"host": "web01"}
    assert pset.spec.resolution == 1
    assert pset.operations() == ["read"]

    prof = pset["read"]
    assert prof.layer == "filesystem"
    hist = prof.histogram
    assert hist.total_ops == 4
    assert hist.total_latency == 9300.0
    assert hist.min_latency == 100.0
    assert hist.max_latency == 9000.0
    assert hist.counts() == {6: 3, 13: 1}
    assert pset.verify_checksums() == []


def test_worked_example_reencodes_byte_identically():
    blob = worked_example_bytes()
    assert ProfileSet.from_bytes(blob).to_bytes() == blob


def test_worked_example_matches_documented_text_form():
    """The text example in the spec describes the same profile."""
    text = (
        "# osprof 1 resolution=1 name=demo\n"
        "op read layer=filesystem total_ops=4 total_latency=9300\n"
        "6 3\n"
        "13 1\n"
        "end\n"
    )
    from_text = ProfileSet.loads(text)
    from_binary = ProfileSet.from_bytes(worked_example_bytes())
    assert from_text.operations() == from_binary.operations()
    ta, tb = from_text["read"].histogram, from_binary["read"].histogram
    assert ta.counts() == tb.counts()
    assert ta.total_ops == tb.total_ops
    assert ta.total_latency == tb.total_latency


def test_documented_corruption_rules_enforced():
    """Spec: flipped bit -> CRC error; truncation -> error."""
    blob = bytearray(worked_example_bytes())
    blob[20] ^= 0x01
    with pytest.raises(ValueError):
        ProfileSet.from_bytes(bytes(blob))
    with pytest.raises(ValueError):
        ProfileSet.from_bytes(worked_example_bytes()[:-10])

"""Tests for the SMP bucket-update strategies (Section 3.4)."""

import sys

import pytest

from repro.core.buckets import LatencyBuckets
from repro.core.locking import (LossySharedBuckets, PerThreadBuckets,
                                locked_reference_count)
from repro.core.profile import Layer


class TestLossyShared:
    def test_single_thread_loses_nothing(self):
        shared = LossySharedBuckets()
        recorded = locked_reference_count(
            workers=1, updates_per_worker=5000,
            make_latency=lambda w, i: 100.0, strategy=shared)
        assert recorded == 5000
        assert shared.lost() == 0

    def test_concurrent_updates_lossy_but_bounded(self):
        # The paper's worst case: two threads hammering the same bucket
        # lost <1% of updates in C.  Python's GIL scheduling makes the
        # loss rate here highly timing-dependent (0-50% across runs),
        # so assert the structural invariants; the tbl-locking bench
        # reports the measured rate.
        shared = LossySharedBuckets()
        locked_reference_count(
            workers=4, updates_per_worker=20_000,
            make_latency=lambda w, i: 100.0, strategy=shared)
        assert shared.attempted() == 80_000
        assert shared.recorded() <= shared.attempted()
        assert shared.lost() == shared.attempted() - shared.recorded()
        # Everything recorded landed in the single contended bucket.
        assert shared.histogram().count(6) == shared.recorded()

    def test_histogram_reflects_surviving_counts(self):
        shared = LossySharedBuckets()
        shared.add(100.0)
        shared.add(100.0)
        hist = shared.histogram()
        assert hist.count(6) == 2

    def test_loss_rate_empty(self):
        assert LossySharedBuckets().loss_rate() == 0.0


class TestPerThread:
    def test_never_loses_updates(self):
        per_thread = PerThreadBuckets()
        recorded = locked_reference_count(
            workers=4, updates_per_worker=20_000,
            make_latency=lambda w, i: 100.0, strategy=per_thread)
        assert recorded == 80_000
        assert per_thread.histogram().count(6) == 80_000

    def test_thread_count_tracked(self):
        per_thread = PerThreadBuckets()
        locked_reference_count(
            workers=3, updates_per_worker=10,
            make_latency=lambda w, i: 50.0, strategy=per_thread)
        assert per_thread.thread_count() == 3

    def test_merged_histogram_spans_all_threads(self):
        per_thread = PerThreadBuckets()
        locked_reference_count(
            workers=2, updates_per_worker=100,
            make_latency=lambda w, i: 100.0 if w == 0 else 100_000.0,
            strategy=per_thread)
        hist = per_thread.histogram()
        assert hist.count(6) == 100
        assert hist.count(16) == 100
        assert hist.verify_checksum()


class TestConcurrencyEquivalence:
    """The merged result must equal a single-threaded reference count."""

    def make_latency(self, worker: int, i: int) -> float:
        # A deterministic stream spanning several buckets, so the
        # equivalence check is per-bucket, not just a grand total.
        return float(10 + (worker * 7919 + i * 104729) % 100_000)

    def reference(self, workers: int, updates: int) -> LatencyBuckets:
        hist = LatencyBuckets()
        for w in range(workers):
            for i in range(updates):
                hist.add(self.make_latency(w, i))
        return hist

    def test_per_thread_merge_equals_single_threaded_reference(self):
        strategy = PerThreadBuckets()
        locked_reference_count(
            workers=4, updates_per_worker=2_000,
            make_latency=self.make_latency, strategy=strategy)
        merged = strategy.histogram()
        expected = self.reference(4, 2_000)
        assert merged.counts() == expected.counts()
        assert merged.total_ops == expected.total_ops
        assert merged.verify_checksum()

    def test_lossy_shared_loss_bounded_under_contention(self):
        # The paper measured <1% lost updates on 2 CPUs.  Python's GIL
        # deschedules a thread mid read-modify-write only at switch
        # boundaries, so the loss rate scales with the preemption rate;
        # with a 100 ms switch interval a sub-100 ms hammering run sees
        # at most a handful of preemptions and the loss stays below the
        # 5% bound we document for this configuration.  (At the default
        # 5 ms interval the rate is timing-dependent — see
        # TestLossyShared above and the tbl-locking bench.)
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(0.1)
        try:
            shared = LossySharedBuckets()
            locked_reference_count(
                workers=4, updates_per_worker=20_000,
                make_latency=lambda w, i: 100.0, strategy=shared)
        finally:
            sys.setswitchinterval(old_interval)
        assert shared.attempted() == 80_000
        assert shared.loss_rate() < 0.05

    def test_lossy_shared_never_invents_updates(self):
        shared = LossySharedBuckets()
        locked_reference_count(
            workers=4, updates_per_worker=5_000,
            make_latency=self.make_latency, strategy=shared)
        assert shared.recorded() <= shared.attempted()


class TestAsProfile:
    def test_per_thread_as_profile_carries_all_updates(self):
        strategy = PerThreadBuckets()
        locked_reference_count(
            workers=3, updates_per_worker=100,
            make_latency=lambda w, i: 500.0, strategy=strategy)
        prof = strategy.as_profile("read", Layer.FILESYSTEM)
        assert prof.operation == "read"
        assert prof.layer == Layer.FILESYSTEM
        assert prof.total_ops == 300
        assert prof.verify_checksum()

    def test_lossy_as_profile_matches_surviving_histogram(self):
        shared = LossySharedBuckets()
        shared.add(100.0)
        shared.add(100.0)
        prof = shared.as_profile("write")
        assert prof.counts() == shared.histogram().counts()


class TestDriver:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            locked_reference_count(0, 10, lambda w, i: 1.0,
                                   PerThreadBuckets())

"""Tests for the SMP bucket-update strategies (Section 3.4)."""

import pytest

from repro.core.locking import (LossySharedBuckets, PerThreadBuckets,
                                locked_reference_count)


class TestLossyShared:
    def test_single_thread_loses_nothing(self):
        shared = LossySharedBuckets()
        recorded = locked_reference_count(
            workers=1, updates_per_worker=5000,
            make_latency=lambda w, i: 100.0, strategy=shared)
        assert recorded == 5000
        assert shared.lost() == 0

    def test_concurrent_updates_lossy_but_bounded(self):
        # The paper's worst case: two threads hammering the same bucket
        # lost <1% of updates in C.  Python's GIL scheduling makes the
        # loss rate here highly timing-dependent (0-50% across runs),
        # so assert the structural invariants; the tbl-locking bench
        # reports the measured rate.
        shared = LossySharedBuckets()
        locked_reference_count(
            workers=4, updates_per_worker=20_000,
            make_latency=lambda w, i: 100.0, strategy=shared)
        assert shared.attempted() == 80_000
        assert shared.recorded() <= shared.attempted()
        assert shared.lost() == shared.attempted() - shared.recorded()
        # Everything recorded landed in the single contended bucket.
        assert shared.histogram().count(6) == shared.recorded()

    def test_histogram_reflects_surviving_counts(self):
        shared = LossySharedBuckets()
        shared.add(100.0)
        shared.add(100.0)
        hist = shared.histogram()
        assert hist.count(6) == 2

    def test_loss_rate_empty(self):
        assert LossySharedBuckets().loss_rate() == 0.0


class TestPerThread:
    def test_never_loses_updates(self):
        per_thread = PerThreadBuckets()
        recorded = locked_reference_count(
            workers=4, updates_per_worker=20_000,
            make_latency=lambda w, i: 100.0, strategy=per_thread)
        assert recorded == 80_000
        assert per_thread.histogram().count(6) == 80_000

    def test_thread_count_tracked(self):
        per_thread = PerThreadBuckets()
        locked_reference_count(
            workers=3, updates_per_worker=10,
            make_latency=lambda w, i: 50.0, strategy=per_thread)
        assert per_thread.thread_count() == 3

    def test_merged_histogram_spans_all_threads(self):
        per_thread = PerThreadBuckets()
        locked_reference_count(
            workers=2, updates_per_worker=100,
            make_latency=lambda w, i: 100.0 if w == 0 else 100_000.0,
            strategy=per_thread)
        hist = per_thread.histogram()
        assert hist.count(6) == 100
        assert hist.count(16) == 100
        assert hist.verify_checksum()


class TestDriver:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            locked_reference_count(0, 10, lambda w, i: 1.0,
                                   PerThreadBuckets())

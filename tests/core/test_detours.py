"""Tests for the Detours-style runtime interceptor."""

import pytest

from repro.core.detours import InterceptionError, Interceptor


class Workload:
    """A 'closed-source' object to be profiled without modification."""

    def __init__(self):
        self.reads = 0

    def read(self, n):
        self.reads += 1
        return b"x" * n

    def write(self, data):
        return len(data)

    value = 42  # not callable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAttach:
    def test_intercepted_calls_are_profiled(self):
        clock = FakeClock()
        target = Workload()
        interceptor = Interceptor(clock=clock)
        interceptor.attach(target, ["read", "write"])
        target.read(10)
        target.read(20)
        target.write(b"abc")
        pset = interceptor.profile_set()
        assert pset["read"].total_ops == 2
        assert pset["write"].total_ops == 1

    def test_behaviour_preserved(self):
        target = Workload()
        with Interceptor(clock=FakeClock()) as interceptor:
            interceptor.attach(target, ["read"])
            assert target.read(5) == b"xxxxx"
            assert target.reads == 1

    def test_prefix_names_operations(self):
        target = Workload()
        interceptor = Interceptor(clock=FakeClock())
        interceptor.attach(target, ["read"], prefix="smb_")
        target.read(1)
        assert "smb_read" in interceptor.profile_set()

    def test_missing_attribute_rejected(self):
        interceptor = Interceptor(clock=FakeClock())
        with pytest.raises(InterceptionError):
            interceptor.attach(Workload(), ["nonexistent"])

    def test_non_callable_rejected(self):
        interceptor = Interceptor(clock=FakeClock())
        with pytest.raises(InterceptionError):
            interceptor.attach(Workload(), ["value"])

    def test_double_attach_is_noop(self):
        target = Workload()
        interceptor = Interceptor(clock=FakeClock())
        first = interceptor.attach(target, ["read"])
        second = interceptor.attach(target, ["read"])
        assert first == ["read"]
        assert second == []
        target.read(1)
        assert interceptor.profile_set()["read"].total_ops == 1

    def test_module_level_interception(self):
        import math
        interceptor = Interceptor(clock=FakeClock())
        try:
            interceptor.attach(math, ["sqrt"])
            assert math.sqrt(4) == 2.0
            assert interceptor.profile_set()["sqrt"].total_ops == 1
        finally:
            interceptor.detach_all()
        assert not hasattr(math.sqrt, "_detours_original")


class TestDetach:
    def test_detach_restores_original(self):
        target = Workload()
        interceptor = Interceptor(clock=FakeClock())
        interceptor.attach(target, ["read"])
        assert interceptor.detach(target, "read")
        target.read(1)
        assert interceptor.profile_set().total_ops() == 0

    def test_detach_unattached_returns_false(self):
        interceptor = Interceptor(clock=FakeClock())
        assert not interceptor.detach(Workload(), "read")

    def test_detach_all_counts(self):
        target = Workload()
        interceptor = Interceptor(clock=FakeClock())
        interceptor.attach(target, ["read", "write"])
        assert interceptor.detach_all() == 2
        assert interceptor.attached() == []

    def test_context_manager_detaches(self):
        target = Workload()
        with Interceptor(clock=FakeClock()) as interceptor:
            interceptor.attach(target, ["read"])
            assert interceptor.attached() == ["read"]
        target.read(1)
        assert interceptor.profile_set().total_ops() == 0

    def test_exception_in_target_still_profiled(self):
        class Boomy:
            def go(self):
                raise RuntimeError("boom")

        target = Boomy()
        interceptor = Interceptor(clock=FakeClock())
        interceptor.attach(target, ["go"])
        with pytest.raises(RuntimeError):
            target.go()
        assert interceptor.profile_set()["go"].total_ops == 1

    def test_reset(self):
        target = Workload()
        interceptor = Interceptor(clock=FakeClock())
        interceptor.attach(target, ["read"])
        target.read(1)
        interceptor.reset()
        assert interceptor.profile_set().total_ops() == 0

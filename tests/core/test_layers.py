"""Tests for layered profiling helpers."""

import pytest

from repro.core.layers import LayerStack, isolate_layer
from repro.core.profile import Profile


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLayerStack:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            LayerStack([], clock=FakeClock())

    def test_unique_layers_required(self):
        with pytest.raises(ValueError):
            LayerStack(["user", "user"], clock=FakeClock())

    def test_ordering_helpers(self):
        stack = LayerStack(["user", "fs", "driver"], clock=FakeClock())
        assert stack.above("fs") == "user"
        assert stack.below("fs") == "driver"
        assert stack.above("user") is None
        assert stack.below("driver") is None

    def test_each_layer_gets_own_profiler(self):
        clock = FakeClock()
        stack = LayerStack(["user", "fs"], clock=clock)
        with stack.profiler("user").request("read"):
            clock.now += 100
        assert stack.profiler("user").profile_set().total_ops() == 1
        assert stack.profiler("fs").profile_set().total_ops() == 0

    def test_profile_sets_keyed_by_layer(self):
        stack = LayerStack(["user", "fs"], clock=FakeClock())
        sets = stack.profile_sets()
        assert set(sets) == {"user", "fs"}


class TestIsolateLayer:
    def test_own_latency_and_fanout(self):
        # User layer saw 10 ops of 1000 cycles; FS layer saw 20 ops of
        # 400 cycles (VFS fan-out 2x).  Own latency = 1000 - 800 = 200.
        outer = Profile.from_latencies("read", [1000] * 10)
        inner = Profile.from_latencies("read", [400] * 20)
        result = isolate_layer(outer, inner)
        assert result["fanout"] == pytest.approx(2.0)
        assert result["own_latency"] == pytest.approx(200.0)
        assert result["inner_share"] == pytest.approx(0.8)

    def test_empty_outer_rejected(self):
        with pytest.raises(ValueError):
            isolate_layer(Profile("read"), Profile("read"))

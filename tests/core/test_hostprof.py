"""Tests for profiling the host OS (user-level profiler)."""

import os

import pytest

from repro.core.hostprof import SyscallProfiler, profile_callable


class TestSyscallProfiler:
    def test_profiles_real_file_io(self, tmp_path):
        path = tmp_path / "data"
        path.write_bytes(b"x" * 8192)
        prof = SyscallProfiler()
        fd = prof.open(str(path), os.O_RDONLY)
        data = prof.read(fd, 4096)
        prof.lseek(fd, 0)
        prof.close(fd)
        assert len(data) == 4096
        pset = prof.profile_set()
        for op in ("open", "read", "lseek", "close"):
            assert pset[op].total_ops == 1
            assert pset[op].verify_checksum()

    def test_listdir_and_stat(self, tmp_path):
        (tmp_path / "f").write_text("hi")
        prof = SyscallProfiler()
        names = prof.listdir(str(tmp_path))
        st = prof.stat(str(tmp_path / "f"))
        assert names == ["f"]
        assert st.st_size == 2
        assert prof.profile_set()["readdir"].total_ops == 1

    def test_latencies_are_positive_cycles(self, tmp_path):
        (tmp_path / "f").write_text("hi")
        prof = SyscallProfiler()
        prof.stat(str(tmp_path / "f"))
        stat_prof = prof.profile_set()["stat"]
        # A real syscall takes at least hundreds of cycles.
        assert stat_prof.mean_latency() > 0

    def test_reset(self, tmp_path):
        prof = SyscallProfiler()
        prof.listdir(str(tmp_path))
        prof.reset()
        assert prof.profile_set().total_ops() == 0

    def test_wrappable_listing(self):
        assert "read" in SyscallProfiler.wrappable()


class TestProfileCallable:
    def test_collects_requested_iterations(self):
        pset = profile_callable(lambda: sum(range(50)), "busy",
                                iterations=200)
        assert pset["busy"].total_ops == 200
        assert pset["busy"].verify_checksum()

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            profile_callable(lambda: None, "x", iterations=0)

    def test_distribution_shape_single_mode(self):
        # An empty callable should form a tight distribution: the vast
        # majority of samples within a few adjacent buckets.
        pset = profile_callable(lambda: None, "empty", iterations=500)
        counts = pset["empty"].counts()
        top = max(counts, key=counts.get)
        near = sum(c for b, c in counts.items() if abs(b - top) <= 2)
        assert near / 500 > 0.8

"""Tests for the Profiler interception layer."""

import pytest

from repro.core.profiler import Profiler, tsc_clock


class FakeClock:
    """A controllable cycle counter."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, cycles):
        self.now += cycles


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return Profiler(name="test", clock=clock)


class TestBeginEnd:
    def test_latency_measured_between_begin_and_end(self, profiler, clock):
        token = profiler.begin("read")
        clock.advance(1000)
        latency = profiler.end(token)
        assert latency == 1000
        assert profiler.profiles["read"].count(9) == 1

    def test_double_end_raises(self, profiler, clock):
        token = profiler.begin("read")
        profiler.end(token)
        with pytest.raises(RuntimeError):
            profiler.end(token)

    def test_nested_requests_each_measured(self, profiler, clock):
        outer = profiler.begin("readdir")
        clock.advance(100)
        inner = profiler.begin("readpage")
        clock.advance(1000)
        profiler.end(inner)
        clock.advance(100)
        profiler.end(outer)
        assert profiler.profiles["readpage"].total_latency == 1000
        assert profiler.profiles["readdir"].total_latency == 1200

    def test_negative_latency_clamped(self, profiler, clock):
        # Clock skew across CPUs can produce negative deltas (§3.4).
        token = profiler.begin("read")
        clock.now = -50
        latency = profiler.end(token)
        assert latency == 0.0
        assert profiler.profiles["read"].count(0) == 1

    def test_disabled_profiler_records_nothing(self, clock):
        prof = Profiler(clock=clock, enabled=False)
        token = prof.begin("read")
        clock.advance(10)
        assert prof.end(token) is None
        assert len(prof.profiles) == 0


class TestContextManagerAndDecorator:
    def test_request_context_manager(self, profiler, clock):
        with profiler.request("write"):
            clock.advance(500)
        assert profiler.profiles["write"].total_ops == 1

    def test_request_records_on_exception(self, profiler, clock):
        with pytest.raises(RuntimeError):
            with profiler.request("write"):
                clock.advance(500)
                raise RuntimeError("boom")
        assert profiler.profiles["write"].total_ops == 1

    def test_wrap_uses_function_name(self, profiler, clock):
        @profiler.wrap()
        def fsync():
            clock.advance(42)
            return "ok"

        assert fsync() == "ok"
        assert profiler.profiles["fsync"].total_ops == 1

    def test_wrap_with_explicit_name(self, profiler, clock):
        @profiler.wrap("custom")
        def helper():
            clock.advance(1)

        helper()
        assert "custom" in profiler.profiles

    def test_record_direct(self, profiler):
        profiler.record("op", 12345)
        assert profiler.profiles["op"].total_ops == 1


class TestHousekeeping:
    def test_reset_clears_profiles(self, profiler, clock):
        with profiler.request("a"):
            clock.advance(1)
        profiler.reset()
        assert len(profiler.profiles) == 0
        assert profiler.requests_profiled == 0

    def test_requests_profiled_counts(self, profiler, clock):
        for _ in range(5):
            with profiler.request("x"):
                clock.advance(1)
        assert profiler.requests_profiled == 5

    def test_measurement_overhead_positive_with_real_clock(self):
        prof = Profiler(clock=tsc_clock())
        overhead = prof.measurement_overhead(samples=100)
        assert overhead >= 0

    def test_measurement_overhead_validates_samples(self, profiler):
        with pytest.raises(ValueError):
            profiler.measurement_overhead(samples=0)

    def test_tsc_clock_monotone(self):
        clock = tsc_clock()
        a = clock()
        b = clock()
        assert b >= a

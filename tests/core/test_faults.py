"""Tests for the deterministic fault-injection plane."""

import pickle

import pytest

from repro.core.faults import (FAULT_KINDS, FAULT_SITES, FaultingSink,
                               FaultPlan, FaultPoint, FaultySocket,
                               InjectedFault, corrupt_bytes)


class TestFaultPoint:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="site"):
            FaultPoint("nowhere", "crash")

    def test_rejects_kind_wrong_for_site(self):
        with pytest.raises(ValueError, match="not armable"):
            FaultPoint("client.send", "crash")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultPoint("shard.worker", "crash", probability=1.5)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            FaultPoint("shard.worker", "hang", seconds=-1.0)

    def test_rejects_unknown_corruption_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FaultPoint("shard.payload", "corrupt", mode="scramble")

    def test_every_site_kind_pair_constructs(self):
        for site, kinds in FAULT_SITES.items():
            for kind in kinds:
                point = FaultPoint(site, kind)
                assert point.kind in FAULT_KINDS

    def test_matches_site_key_and_attempt(self):
        point = FaultPoint("shard.worker", "crash", key="shard:1",
                           attempts=(0, 2))
        assert point.matches("shard.worker", "shard:1", 0)
        assert point.matches("shard.worker", "shard:1", 2)
        assert not point.matches("shard.worker", "shard:1", 1)
        assert not point.matches("shard.worker", "shard:0", 0)
        assert not point.matches("shard.payload", "shard:1", 0)

    def test_empty_attempts_matches_every_attempt(self):
        point = FaultPoint("shard.worker", "crash", attempts=())
        assert all(point.matches("shard.worker", None, n)
                   for n in range(10))

    def test_none_key_matches_any_key(self):
        point = FaultPoint("shard.worker", "crash")
        assert point.matches("shard.worker", "shard:7", 0)
        assert point.matches("shard.worker", None, 0)


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_inert(self):
        plan = FaultPlan()
        assert not plan
        assert plan.point_at("shard.worker") is None
        assert plan.fire("shard.worker", data=b"x") == b"x"

    def test_crash_raises_injected_fault(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash")])
        with pytest.raises(InjectedFault) as info:
            plan.fire("shard.worker", key="shard:0", attempt=0)
        assert info.value.site == "shard.worker"
        assert info.value.attempt == 0

    def test_error_raises_oserror_subclass(self):
        plan = FaultPlan([FaultPoint("client.connect", "error")])
        with pytest.raises(ConnectionError):
            plan.fire("client.connect")

    def test_attempt_one_heals(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     attempts=(0,))])
        with pytest.raises(InjectedFault):
            plan.fire("shard.worker", attempt=0)
        assert plan.fire("shard.worker", attempt=1, data=b"ok") == b"ok"

    def test_hang_and_delay_call_sleep(self):
        slept = []
        plan = FaultPlan([
            FaultPoint("shard.worker", "hang", key="h", seconds=9.0),
            FaultPoint("shard.worker", "delay", key="d", seconds=0.25),
        ])
        plan.fire("shard.worker", key="h", sleep=slept.append)
        plan.fire("shard.worker", key="d", sleep=slept.append)
        assert slept == [9.0, 0.25]

    def test_hang_default_is_an_hour(self):
        slept = []
        plan = FaultPlan([FaultPoint("shard.worker", "hang")])
        plan.fire("shard.worker", sleep=slept.append)
        assert slept == [3600.0]

    def test_corrupt_is_deterministic_per_plan_seed(self):
        data = bytes(range(64))
        plan = FaultPlan([FaultPoint("shard.payload", "corrupt")], seed=5)
        same = FaultPlan([FaultPoint("shard.payload", "corrupt")], seed=5)
        other = FaultPlan([FaultPoint("shard.payload", "corrupt")], seed=6)
        a = plan.fire("shard.payload", data=data)
        assert a != data
        assert a == same.fire("shard.payload", data=data)
        assert a != other.fire("shard.payload", data=data)

    def test_probability_gate_is_deterministic(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     attempts=(), probability=0.5)],
                         seed=11)
        fired = [plan.point_at("shard.worker", attempt=n) is not None
                 for n in range(64)]
        again = [plan.point_at("shard.worker", attempt=n) is not None
                 for n in range(64)]
        assert fired == again
        assert any(fired) and not all(fired)

    def test_plan_pickles_across_process_boundaries(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     key="shard:1")], seed=3)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.point_at("shard.worker", key="shard:1") is not None

    def test_injected_fault_pickles_with_fields(self):
        fault = InjectedFault("shard.worker", "crash", "shard:2", 1)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert (clone.site, clone.kind, clone.key, clone.attempt) == \
            ("shard.worker", "crash", "shard:2", 1)


class TestCorruptBytes:
    def test_flip_damages_exactly_one_bit(self):
        data = bytes(64)
        damaged = corrupt_bytes(data, seed=9, mode="flip")
        assert len(damaged) == len(data)
        diff = [a ^ b for a, b in zip(data, damaged)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_flip_is_seed_deterministic(self):
        data = bytes(range(32))
        assert corrupt_bytes(data, seed=4) == corrupt_bytes(data, seed=4)
        assert corrupt_bytes(data, seed=4) != corrupt_bytes(data, seed=5)

    def test_tail_flips_low_bit_of_last_byte(self):
        data = b"\x00" * 10
        damaged = corrupt_bytes(data, mode="tail")
        assert damaged[:-1] == data[:-1]
        assert damaged[-1] == 1

    def test_truncate_halves(self):
        assert corrupt_bytes(bytes(10), mode="truncate") == bytes(5)

    def test_empty_input_unchanged(self):
        assert corrupt_bytes(b"", mode="flip") == b""

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            corrupt_bytes(b"x", mode="nope")


class FakeSocket:
    def __init__(self):
        self.sent = []

    def sendall(self, data):
        self.sent.append(bytes(data))

    def recv(self, bufsize):
        return b"reply"

    def close(self):
        self.closed = True


class TestFaultySocket:
    def test_send_fault_fires_on_ordinal(self):
        plan = FaultPlan([FaultPoint("client.send", "error",
                                     attempts=(1,))])
        sock = FaultySocket(FakeSocket(), plan)
        sock.sendall(b"first")
        with pytest.raises(ConnectionError):
            sock.sendall(b"second")

    def test_send_corruption_reaches_the_wire(self):
        inner = FakeSocket()
        plan = FaultPlan([FaultPoint("client.send", "corrupt",
                                     mode="tail")], seed=2)
        sock = FaultySocket(inner, plan)
        sock.sendall(b"\x00\x00\x00\x00")
        assert inner.sent == [b"\x00\x00\x00\x01"]

    def test_recv_fault_fires_on_ordinal(self):
        plan = FaultPlan([FaultPoint("client.recv", "error",
                                     attempts=(0,))])
        sock = FaultySocket(FakeSocket(), plan)
        with pytest.raises(ConnectionError):
            sock.recv(16)
        assert sock.recv(16) == b"reply"

    def test_delegates_everything_else(self):
        sock = FaultySocket(FakeSocket(), FaultPlan())
        sock.close()
        assert sock._sock.closed


class Recorder:
    def __init__(self):
        self.batches = []
        self.flushed = 0

    def consume(self, layer, events):
        self.batches.append((layer, list(events)))

    def flush(self):
        self.flushed += 1


class TestFaultingSink:
    def test_raises_on_armed_consume_then_heals(self):
        inner = Recorder()
        plan = FaultPlan([FaultPoint("sink.consume", "error",
                                     attempts=(0,))])
        sink = FaultingSink(plan, inner=inner)
        with pytest.raises(InjectedFault):
            sink.consume("fs", [1, 2])
        sink.consume("fs", [3])
        assert inner.batches == [("fs", [3])]

    def test_flush_forwards(self):
        inner = Recorder()
        sink = FaultingSink(FaultPlan(), inner=inner)
        sink.flush()
        assert inner.flushed == 1

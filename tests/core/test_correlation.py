"""Tests for direct profile/value correlation (Figure 8 machinery)."""

import pytest

from repro.core.correlation import PeakRange, ValueCorrelator


class TestPeakRange:
    def test_contains(self):
        peak = PeakRange("first", 6, 7)
        assert peak.contains(6)
        assert peak.contains(7)
        assert not peak.contains(8)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PeakRange("bad", 7, 6)


class TestValueCorrelator:
    def test_routing_by_latency_peak(self):
        vc = ValueCorrelator([PeakRange("fast", 5, 8),
                              PeakRange("slow", 16, 23)])
        assert vc.record(latency=100, value=1) == "fast"       # bucket 6
        assert vc.record(latency=100_000, value=9) == "slow"   # bucket 16
        assert vc.record(latency=5_000, value=3) == "other"    # bucket 12

    def test_value_scale_like_figure8(self):
        # Figure 8 multiplies the 0/1 flag by 1024 to make it visible.
        vc = ValueCorrelator([PeakRange("first", 6, 7)],
                             value_scale=1024)
        vc.record(latency=100, value=1)
        hist = vc.histogram("first")
        assert hist.count(10) == 1  # 1024 -> bucket 10

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ValueCorrelator([PeakRange("a", 1, 2), PeakRange("a", 3, 4)])

    def test_reserved_name_rejected(self):
        with pytest.raises(ValueError):
            ValueCorrelator([PeakRange("other", 1, 2)])

    def test_negative_value_rejected(self):
        vc = ValueCorrelator([PeakRange("a", 5, 8)])
        with pytest.raises(ValueError):
            vc.record(latency=100, value=-1)

    def test_first_matching_peak_wins(self):
        vc = ValueCorrelator([PeakRange("a", 5, 10), PeakRange("b", 8, 12)])
        assert vc.record(latency=512, value=1) == "a"  # bucket 9

    def test_summary_structure(self):
        vc = ValueCorrelator([PeakRange("p", 5, 8)])
        vc.record(100, 4)
        summary = vc.summary()
        assert set(summary) == {"p", "other"}
        assert sum(summary["p"].values()) == 1

    def test_discrimination_perfect_separation(self):
        # Peak requests carry flag 1 (*1024); others carry flag 0.
        vc = ValueCorrelator([PeakRange("eof", 6, 7)], value_scale=1024)
        for _ in range(50):
            vc.record(latency=100, value=1)     # eof peak, flag 1
        for _ in range(50):
            vc.record(latency=100_000, value=0)  # other, flag 0
        assert vc.discrimination("eof") == 1.0

    def test_discrimination_no_separation(self):
        vc = ValueCorrelator([PeakRange("p", 6, 7)])
        for _ in range(10):
            vc.record(latency=100, value=8)
            vc.record(latency=100_000, value=8)
        assert vc.discrimination("p") == 0.0

    def test_discrimination_empty_peak(self):
        vc = ValueCorrelator([PeakRange("p", 6, 7)])
        assert vc.discrimination("p") == 0.0

    def test_dominant_value_bucket(self):
        vc = ValueCorrelator([PeakRange("p", 6, 7)])
        vc.record(100, 16)
        vc.record(100, 16)
        vc.record(100, 1024)
        assert vc.dominant_value_bucket("p") == 4
        assert vc.dominant_value_bucket("other") is None

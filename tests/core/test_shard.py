"""Tests for the sharded parallel collection engine.

The invariant under test is the acceptance criterion of the shard
design: the merged N-shard profile depends only on ``(workload, seed,
shards)`` — running the shards in parallel worker processes yields a
profile set byte-identical to running them serially in-process.
"""

import pytest

from repro.core.faults import FaultPlan, FaultPoint, InjectedFault
from repro.core.locking import PerThreadBuckets, locked_reference_count
from repro.core.profile import Layer
from repro.core.profileset import ProfileSet
from repro.core.shard import (DEGRADED_ATTRIBUTE, ShardError, ShardTask,
                              collect_sharded, plan_shards, run_shard)
from repro.sim.rng import SimRandom, derive_seed


class TestSeedDerivation:
    def test_matches_simrandom_fork(self):
        assert derive_seed(2006, "shard:0") == SimRandom(2006).fork("shard:0").seed

    def test_distinct_per_shard(self):
        seeds = [derive_seed(7, f"shard:{i}") for i in range(16)]
        assert len(set(seeds)) == 16

    def test_stable_values(self):
        # Pinned: a change here silently invalidates every saved shard
        # profile, so it must be deliberate.
        assert derive_seed(2006, "shard:0") == 446016895


class TestPlanning:
    def test_iterations_split_with_remainder_first(self):
        tasks = plan_shards("randomread", shards=3, iterations=100)
        assert [t.iterations for t in tasks] == [34, 33, 33]
        assert sum(t.iterations for t in tasks) == 100

    def test_grep_replicates_instead_of_splitting(self):
        tasks = plan_shards("grep", shards=3, iterations=100)
        assert [t.iterations for t in tasks] == [100, 100, 100]

    def test_each_shard_gets_derived_seed(self):
        tasks = plan_shards("zerobyte", shards=2, seed=42, iterations=10)
        assert tasks[0].seed == derive_seed(42, "shard:0")
        assert tasks[1].seed == derive_seed(42, "shard:1")

    def test_plan_is_deterministic(self):
        assert (plan_shards("postmark", shards=4, seed=9, iterations=200)
                == plan_shards("postmark", shards=4, seed=9, iterations=200))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards("bogus", shards=1)
        with pytest.raises(ValueError):
            plan_shards("grep", shards=0)
        with pytest.raises(ValueError):
            plan_shards("grep", shards=1, layer="bogus")
        with pytest.raises(ValueError):
            plan_shards("randomread", shards=8, iterations=4)


class TestRunShard:
    def test_returns_valid_binary_payload(self):
        task = plan_shards("zerobyte", shards=1, iterations=40)[0]
        pset = ProfileSet.from_bytes(run_shard(task))
        assert "read" in pset
        assert pset.total_ops() > 0
        assert not pset.verify_checksums()

    def test_task_is_picklable(self):
        import pickle
        task = plan_shards("randomread", shards=2, iterations=50)[1]
        assert pickle.loads(pickle.dumps(task)) == task


class TestSerialParallelEquivalence:
    def test_parallel_merge_matches_serial_bucket_for_bucket(self):
        kwargs = dict(shards=2, seed=7, iterations=120)
        serial = collect_sharded("randomread", workers=1, **kwargs)
        parallel = collect_sharded("randomread", workers=2, **kwargs)
        assert parallel == serial
        assert parallel.to_bytes() == serial.to_bytes()

    def test_total_iterations_conserved(self):
        merged = collect_sharded("zerobyte", shards=3, workers=1,
                                 iterations=90, processes=1)
        assert merged["read"].total_ops == 90

    def test_worker_count_never_changes_result(self):
        kwargs = dict(shards=3, seed=11, iterations=60, processes=1)
        results = [collect_sharded("zerobyte", workers=w, **kwargs)
                   for w in (1, 2, 3)]
        assert results[0].to_bytes() == results[1].to_bytes()
        assert results[1].to_bytes() == results[2].to_bytes()

    def test_shard_count_changes_sampling_but_conserves_ops(self):
        one = collect_sharded("zerobyte", shards=1, workers=1,
                              iterations=80, processes=1)
        four = collect_sharded("zerobyte", shards=4, workers=1,
                               iterations=80, processes=1)
        assert one["read"].total_ops == four["read"].total_ops == 80

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            collect_sharded("zerobyte", shards=1, workers=0, iterations=10)


class TestSelfHealing:
    KWARGS = dict(shards=2, workers=1, seed=7, iterations=60,
                  processes=1)

    def baseline(self):
        return collect_sharded("zerobyte", **self.KWARGS)

    def test_crash_heals_byte_identically(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     key="shard:1", attempts=(0,))])
        healed = collect_sharded("zerobyte", fault_plan=plan,
                                 **self.KWARGS)
        assert healed.to_bytes() == self.baseline().to_bytes()

    def test_corrupt_payload_heals_byte_identically(self):
        plan = FaultPlan([FaultPoint("shard.payload", "corrupt",
                                     key="shard:0", attempts=(0,))],
                         seed=3)
        healed = collect_sharded("zerobyte", fault_plan=plan,
                                 **self.KWARGS)
        assert healed.to_bytes() == self.baseline().to_bytes()

    def test_exhausted_retries_raise_shard_error(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     key="shard:1", attempts=())])
        with pytest.raises(ShardError) as info:
            collect_sharded("zerobyte", fault_plan=plan, max_retries=1,
                            **self.KWARGS)
        assert info.value.attempts == 2
        assert set(info.value.failures) == {1}
        assert isinstance(info.value.failures[1], InjectedFault)

    def test_salvage_marks_result_degraded(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     key="shard:1", attempts=())])
        partial = collect_sharded("zerobyte", fault_plan=plan,
                                  max_retries=0, salvage=True,
                                  **self.KWARGS)
        assert partial.attributes[DEGRADED_ATTRIBUTE] == "shards:1"
        assert not partial.verify_checksums()
        assert partial.total_ops() < self.baseline().total_ops()

    def test_salvage_with_no_survivors_still_raises(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     attempts=())])
        with pytest.raises(ShardError):
            collect_sharded("zerobyte", fault_plan=plan, max_retries=0,
                            salvage=True, **self.KWARGS)

    def test_fault_free_plan_changes_nothing(self):
        clean = collect_sharded("zerobyte", fault_plan=FaultPlan(),
                                **self.KWARGS)
        assert clean.to_bytes() == self.baseline().to_bytes()

    def test_rejects_bad_retry_and_deadline_arguments(self):
        with pytest.raises(ValueError):
            collect_sharded("zerobyte", max_retries=-1, **self.KWARGS)
        with pytest.raises(ValueError):
            collect_sharded("zerobyte", deadline=0.0, **self.KWARGS)


class TestPooledSelfHealing:
    KWARGS = dict(shards=2, workers=2, seed=7, iterations=60,
                  processes=1)

    def test_pooled_crash_heals_byte_identically(self):
        plan = FaultPlan([FaultPoint("shard.worker", "crash",
                                     key="shard:0", attempts=(0,))])
        healed = collect_sharded("zerobyte", fault_plan=plan,
                                 **self.KWARGS)
        baseline = collect_sharded("zerobyte", **self.KWARGS)
        assert healed.to_bytes() == baseline.to_bytes()

    def test_pooled_hang_detected_by_deadline_and_healed(self):
        plan = FaultPlan([FaultPoint("shard.worker", "hang",
                                     key="shard:1", attempts=(0,),
                                     seconds=30.0)])
        healed = collect_sharded("zerobyte", fault_plan=plan,
                                 deadline=2.0, **self.KWARGS)
        baseline = collect_sharded("zerobyte", **self.KWARGS)
        assert healed.to_bytes() == baseline.to_bytes()


class TestLockingComposition:
    def test_per_thread_buckets_lift_into_profileset_merge(self):
        # The full Section 3.4 pipeline: threads update private buckets,
        # the strategy merges them into one Profile per shard, and
        # ProfileSet.merge folds shards together — with no updates lost
        # at either level.
        merged = ProfileSet()
        for shard in range(3):
            strategy = PerThreadBuckets()
            locked_reference_count(
                workers=2, updates_per_worker=500,
                make_latency=lambda w, i: 100.0 * (1 + w), strategy=strategy)
            merged.insert(strategy.as_profile("read", Layer.FILESYSTEM))
        assert merged["read"].total_ops == 3 * 2 * 500
        assert merged["read"].verify_checksum()

    def test_as_profile_round_trips_through_codec(self):
        strategy = PerThreadBuckets()
        locked_reference_count(
            workers=2, updates_per_worker=100,
            make_latency=lambda w, i: 250.0, strategy=strategy)
        pset = ProfileSet()
        pset.insert(strategy.as_profile("llseek"))
        assert ProfileSet.from_bytes(pset.to_bytes()) == pset

"""Round-trip and corruption tests for the profile codecs.

Property 1 (inverse codecs): for any ProfileSet, ``save -> load ->
save`` is byte-identical, in both the `/proc`-style text format and the
checksummed binary format.

Property 2 (loud failure): malformed input of every corruption mode —
bad header, truncated block, mangled bucket line, checksum mismatch,
flipped payload byte — raises ``ValueError``, never a silent misparse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import BucketSpec
from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet

op_names = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
latency_lists = st.lists(st.floats(min_value=0, max_value=1e14),
                         min_size=1, max_size=50)
layers = st.sampled_from([Layer.USER, Layer.FILESYSTEM, Layer.DRIVER,
                          Layer.NETWORK])


@st.composite
def profile_sets(draw):
    resolution = draw(st.integers(min_value=1, max_value=4))
    pset = ProfileSet(name=draw(st.text(alphabet="abcxyz", max_size=8)),
                      spec=BucketSpec(resolution),
                      attributes=draw(st.dictionaries(
                          st.text(alphabet="kv_", min_size=1, max_size=6),
                          st.text(alphabet="kv_", max_size=6),
                          max_size=3)))
    samples = draw(st.dictionaries(op_names, latency_lists, max_size=6))
    for (op, latencies), layer in zip(
            samples.items(), (draw(layers) for _ in samples)):
        for lat in latencies:
            pset.profile(op, layer).add(lat)
    return pset


class TestBinaryRoundTrip:
    @given(profile_sets())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_encode_is_byte_identical(self, pset):
        blob = pset.to_bytes()
        decoded = ProfileSet.from_bytes(blob)
        assert decoded == pset
        assert decoded.to_bytes() == blob

    @given(profile_sets())
    @settings(max_examples=40, deadline=None)
    def test_decode_preserves_exact_state(self, pset):
        decoded = ProfileSet.from_bytes(pset.to_bytes())
        assert decoded.name == pset.name
        assert decoded.attributes == pset.attributes
        assert decoded.spec == pset.spec
        for op in pset.operations():
            assert decoded[op].layer == pset[op].layer
            assert decoded[op].counts() == pset[op].counts()
            assert decoded[op].total_ops == pset[op].total_ops
            # Exact float totals and extrema survive, unlike the text
            # format which rounds total_latency to whole cycles.
            assert decoded[op].total_latency == pset[op].total_latency
            assert (decoded[op].histogram.min_latency
                    == pset[op].histogram.min_latency)
            assert (decoded[op].histogram.max_latency
                    == pset[op].histogram.max_latency)
        assert not decoded.verify_checksums()

    def test_profiles_are_compact(self):
        # The paper: "a profile of an operation usually occupies about
        # 1 KB in its source (text) form" — the binary form stays below
        # that even for a fully populated histogram.
        prof = ProfileSet()
        for b in range(64):
            prof.profile("read").histogram.add_to_bucket(b, 10 ** 9)
        per_op = len(prof.to_bytes())
        assert per_op < 1024


class TestTextRoundTrip:
    @given(profile_sets())
    @settings(max_examples=60, deadline=None)
    def test_dump_load_dump_is_byte_identical(self, pset):
        text = pset.dumps()
        reloaded = ProfileSet.loads(text)
        assert reloaded.dumps() == text

    @given(profile_sets())
    @settings(max_examples=40, deadline=None)
    def test_text_and_binary_agree_on_buckets(self, pset):
        via_text = ProfileSet.loads(pset.dumps())
        via_binary = ProfileSet.from_bytes(pset.to_bytes())
        assert via_text.operations() == via_binary.operations()
        for op in via_text.operations():
            assert via_text[op].counts() == via_binary[op].counts()
            assert via_text[op].total_ops == via_binary[op].total_ops


def sample_set() -> ProfileSet:
    pset = ProfileSet(name="sample")
    pset.add("read", 100)
    pset.add("read", 2000)
    pset.add("llseek", 400, layer=Layer.USER)
    return pset


class TestBinaryCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            ProfileSet.from_bytes(b"NOTPROFS" + b"\x00" * 32)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            ProfileSet.from_bytes(b"")

    def test_truncation_rejected_at_every_length(self):
        blob = sample_set().to_bytes()
        for cut in range(len(blob)):
            with pytest.raises(ValueError):
                ProfileSet.from_bytes(blob[:cut])

    def test_any_flipped_payload_byte_fails_crc(self):
        blob = sample_set().to_bytes()
        for pos in range(8, len(blob) - 4, 7):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x5A
            with pytest.raises(ValueError):
                ProfileSet.from_bytes(bytes(mutated))

    def test_trailing_garbage_rejected(self):
        blob = sample_set().to_bytes()
        with pytest.raises(ValueError):
            ProfileSet.from_bytes(blob + b"extra")

    def test_non_bytes_rejected(self):
        with pytest.raises(ValueError):
            ProfileSet.from_bytes("a string")  # type: ignore[arg-type]


class TestTextCorruption:
    def test_bad_header(self):
        with pytest.raises(ValueError, match="not an osprof"):
            ProfileSet.loads("bogus\n")

    def test_bad_resolution(self):
        with pytest.raises(ValueError, match="header"):
            ProfileSet.loads("# osprof 1 resolution=zero\n")

    def test_bucket_line_outside_block(self):
        with pytest.raises(ValueError, match="outside op block"):
            ProfileSet.loads("# osprof 1 resolution=1\n5 10\n")

    def test_malformed_bucket_line_extra_fields(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem\n5 10 99\nend\n")
        with pytest.raises(ValueError, match="malformed bucket line"):
            ProfileSet.loads(bad)

    def test_malformed_bucket_line_non_integer(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem\nfive ten\nend\n")
        with pytest.raises(ValueError, match="malformed bucket line"):
            ProfileSet.loads(bad)

    def test_negative_bucket_rejected(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem\n-1 10\nend\n")
        with pytest.raises(ValueError, match="bad bucket line"):
            ProfileSet.loads(bad)

    def test_truncated_block_rejected(self):
        bad = "# osprof 1 resolution=1\nop read layer=filesystem\n5 10\n"
        with pytest.raises(ValueError, match="truncated"):
            ProfileSet.loads(bad)

    def test_unclosed_block_before_next_op_rejected(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem\n5 10\n"
               "op write layer=filesystem\n6 1\nend\n")
        with pytest.raises(ValueError, match="not closed"):
            ProfileSet.loads(bad)

    def test_stray_end_rejected(self):
        with pytest.raises(ValueError, match="outside an op block"):
            ProfileSet.loads("# osprof 1 resolution=1\nend\n")

    def test_duplicate_op_rejected(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem\n5 1\nend\n"
               "op read layer=filesystem\n6 1\nend\n")
        with pytest.raises(ValueError, match="duplicate op"):
            ProfileSet.loads(bad)

    def test_total_ops_checksum_enforced(self):
        bad = ("# osprof 1 resolution=1\n"
               "op read layer=filesystem total_ops=99 total_latency=100\n"
               "5 1\nend\n")
        with pytest.raises(ValueError, match="checksum mismatch"):
            ProfileSet.loads(bad)

    def test_corrupt_count_caught_by_checksum(self):
        # Flip one bucket count in an otherwise valid dump: the declared
        # total_ops no longer matches, so the load fails loudly.
        good = sample_set().dumps()
        lines = good.splitlines()
        idx = next(i for i, l in enumerate(lines)
                   if l and l[0].isdigit())
        bucket, count = lines[idx].split()
        lines[idx] = f"{bucket} {int(count) + 3}"
        with pytest.raises(ValueError, match="checksum mismatch"):
            ProfileSet.loads("\n".join(lines) + "\n")


class TestFileHelpers:
    def test_save_load_path_text(self, tmp_path):
        pset = sample_set()
        path = str(tmp_path / "p.prof")
        pset.save(path, format="text")
        assert ProfileSet.load_path(path) == pset

    def test_save_load_path_binary_autodetect(self, tmp_path):
        pset = sample_set()
        path = str(tmp_path / "p.ospb")
        pset.save(path, format="binary")
        assert ProfileSet.load_path(path) == pset
        assert ProfileSet.load_path(path, format="binary") == pset

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown profile format"):
            sample_set().save(str(tmp_path / "x"), format="xml")
        with pytest.raises(ValueError, match="unknown profile format"):
            ProfileSet.load_path(str(tmp_path / "x"), format="xml")

    def test_load_path_on_garbage_binary(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\xff\xfe\x00junk")
        with pytest.raises(ValueError):
            ProfileSet.load_path(str(path))


class TestEquality:
    def test_equal_sets_compare_equal(self):
        assert sample_set() == sample_set()

    def test_bucket_difference_detected(self):
        a, b = sample_set(), sample_set()
        b.add("read", 100)
        assert a != b

    def test_layer_difference_detected(self):
        a = ProfileSet()
        a.profile("read", Layer.USER).add(10)
        b = ProfileSet()
        b.profile("read", Layer.DRIVER).add(10)
        assert a != b

    def test_profile_equality_requires_same_histogram(self):
        assert (Profile.from_latencies("read", [10, 20])
                == Profile.from_latencies("read", [10, 20]))
        assert (Profile.from_latencies("read", [10])
                != Profile.from_latencies("read", [40]))

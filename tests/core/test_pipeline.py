"""Unit tests for the probe/event pipeline (contexts, sinks, batching)."""

import math
from types import SimpleNamespace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buckets import BucketSpec
from repro.core.correlation import PeakRange, ValueCorrelator
from repro.core.pipeline import (CorrelationSink, FanoutSink, NullSink,
                                 Pipeline, ProbePoint, ProfileSink,
                                 RequestContext, SamplingSink, StreamSink,
                                 TokenFinishedError, TraceSink, wire_probe)
from repro.core.profile import Layer
from repro.core.profiler import Profiler
from repro.core.profileset import ProfileSet
from repro.core.sampling import SampledProfiler


class ManualClock:
    """A settable clock for exercising entry/exit timing."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def fake_proc():
    return SimpleNamespace(request_context=None)


class TestRequestContext:
    def test_child_shares_request_id(self):
        root = RequestContext(7, "read", Layer.USER)
        child = root.child("readpage", Layer.FILESYSTEM)
        assert child.request_id == 7
        assert child.parent is root
        assert child.depth == 1

    def test_path_is_outermost_first(self):
        root = RequestContext(1, "read", Layer.USER)
        leaf = root.child("read", Layer.FILESYSTEM).child(
            "disk_read", Layer.DRIVER)
        assert leaf.path == ((Layer.USER, "read"),
                             (Layer.FILESYSTEM, "read"),
                             (Layer.DRIVER, "disk_read"))

    def test_annotations_resolve_up_the_parent_chain(self):
        root = RequestContext(1, "readdir", Layer.USER)
        root.annotate("past_eof", 1)
        child = root.child("readdir", Layer.FILESYSTEM)
        assert child.value("past_eof") == 1
        assert child.value("missing", default=-1) == -1
        child.annotate("past_eof", 0)
        assert child.value("past_eof") == 0
        assert root.value("past_eof") == 1


class TestProbePoint:
    def test_enter_exit_records_latency(self):
        clock = ManualClock()
        pipeline = Pipeline()
        pset = ProfileSet(name="t")
        probe = pipeline.probe(Layer.USER, ProfileSink(pset), clock=clock)
        token = probe.enter("read")
        clock.now = 100.0
        latency = probe.exit(token)
        assert latency == 100.0
        pipeline.flush()
        assert pset.profile("read", Layer.USER).total_ops == 1
        assert pset.profile("read", Layer.USER).total_latency == 100.0

    def test_exit_twice_raises_token_finished(self):
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, ProfileSink(ProfileSet()),
                               clock=ManualClock())
        token = probe.enter("read")
        probe.exit(token)
        with pytest.raises(TokenFinishedError):
            probe.exit(token)

    def test_clock_rollback_clamps_to_bucket_zero(self):
        # Cross-CPU TSC skew can make exit read an earlier timestamp
        # than entry; the sample must land in bucket 0, not corrupt the
        # histogram with a negative latency.
        clock = ManualClock(now=1000.0)
        pipeline = Pipeline()
        pset = ProfileSet(name="t")
        probe = pipeline.probe(Layer.USER, ProfileSink(pset), clock=clock)
        token = probe.enter("read")
        clock.now = 400.0
        assert probe.exit(token) == 0.0
        pipeline.flush()
        assert pset.profile("read", Layer.USER).counts() == {0: 1}

    def test_nullsink_only_probe_is_inactive(self):
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, NullSink())
        assert not probe.active
        probe.record("read", 50.0)
        assert probe.events_recorded == 0
        assert pipeline.pending_events() == 0

    def test_events_buffer_until_flush(self):
        pipeline = Pipeline()
        pset = ProfileSet(name="t")
        probe = pipeline.probe(Layer.USER, ProfileSink(pset))
        probe.record("read", 10.0)
        probe.record("read", 20.0)
        assert pipeline.pending_events() == 2
        assert pset.total_ops() == 0
        pipeline.flush()
        assert pipeline.pending_events() == 0
        assert pset.total_ops() == 2

    def test_batch_size_triggers_auto_drain(self):
        pipeline = Pipeline(batch_size=4)
        pset = ProfileSet(name="t")
        probe = pipeline.probe(Layer.USER, ProfileSink(pset))
        for _ in range(4):
            probe.record("read", 8.0)
        assert pipeline.pending_events() == 0
        assert pset.total_ops() == 4

    def test_push_context_roots_then_nests(self):
        pipeline = Pipeline()
        user = pipeline.probe(Layer.USER, ProfileSink(ProfileSet()))
        fs = pipeline.probe(Layer.FILESYSTEM, ProfileSink(ProfileSet()))
        proc = fake_proc()
        root = user.push_context(proc, "read")
        assert proc.request_context is root
        assert root.parent is None
        nested = fs.push_context(proc, "readpage")
        assert nested.parent is root
        assert nested.request_id == root.request_id
        ProbePoint.pop_context(proc, nested)
        assert proc.request_context is root
        ProbePoint.pop_context(proc, root)
        assert proc.request_context is None

    def test_fresh_roots_get_distinct_request_ids(self):
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, ProfileSink(ProfileSet()))
        proc = fake_proc()
        first = probe.push_context(proc, "read")
        ProbePoint.pop_context(proc, first)
        second = probe.push_context(proc, "read")
        assert second.request_id != first.request_id


class TestProfilerTokens:
    """Satellite: RequestToken double-finish / clock-rollback semantics."""

    def test_double_finish_raises_token_finished_error(self):
        profiler = Profiler(clock=ManualClock())
        token = profiler.begin("read")
        profiler.end(token)
        with pytest.raises(TokenFinishedError,
                           match="finished twice"):
            profiler.end(token)

    def test_token_finished_error_is_a_runtime_error(self):
        # Pre-pipeline callers caught RuntimeError; keep that contract.
        assert issubclass(TokenFinishedError, RuntimeError)

    def test_finish_after_clock_rollback_lands_in_bucket_zero(self):
        clock = ManualClock(now=5000.0)
        profiler = Profiler(clock=clock)
        token = profiler.begin("read")
        clock.now = 100.0
        assert profiler.end(token) == 0.0
        assert profiler.profile_set().profile(
            "read", profiler.layer).counts() == {0: 1}


class TestWireProbe:
    def test_profile_set_read_flushes_pipeline(self):
        pipeline = Pipeline()
        profiler = Profiler(name="t", clock=ManualClock())
        probe = wire_probe(pipeline, Layer.USER, profiler=profiler)
        probe.record("read", 12.0)
        # No explicit flush: reading results must drain the buffers.
        assert profiler.profile_set().total_ops() == 1

    def test_reset_keeps_sink_targeting_current_set(self):
        pipeline = Pipeline()
        profiler = Profiler(name="t", clock=ManualClock())
        probe = wire_probe(pipeline, Layer.USER, profiler=profiler)
        probe.record("read", 12.0)
        profiler.reset()
        assert profiler.profile_set().total_ops() == 0
        probe.record("read", 30.0)
        assert profiler.profile_set().total_ops() == 1

    def test_sampled_series_read_flushes_pipeline(self):
        clock = ManualClock()
        pipeline = Pipeline()
        sampled = SampledProfiler(clock=clock, interval=100.0, name="t")
        probe = wire_probe(pipeline, Layer.FILESYSTEM, sampled=sampled)
        probe.record("read", 5.0, start=250.0)
        series = sampled.series()
        assert len(series) == 3
        assert series[2].total_ops() == 1

    def test_no_targets_wires_nullsink(self):
        probe = wire_probe(Pipeline(), Layer.USER)
        assert not probe.active
        assert any(isinstance(s, NullSink) for s in probe.sinks)

    @given(st.lists(st.floats(min_value=0, max_value=1e12),
                    min_size=1, max_size=300))
    def test_batched_profile_bytes_match_per_sample_path(self, latencies):
        # The tentpole invariant: deferring histogram insertion through
        # the pipeline's batch buffers must not move a single bit of the
        # canonical encoding relative to the per-sample Profiler path.
        clock = ManualClock()
        per_sample = Profiler(name="x", layer=Layer.USER, clock=clock)
        pipeline = Pipeline(batch_size=16)
        batched = Profiler(name="x", layer=Layer.USER, clock=clock)
        probe = wire_probe(pipeline, Layer.USER, profiler=batched)
        for i, latency in enumerate(latencies):
            per_sample.record(f"op{i % 3}", latency)
            probe.record(f"op{i % 3}", latency)
        assert batched.profile_set().to_bytes() == \
            per_sample.profile_set().to_bytes()


class TestSamplingSink:
    def test_attributes_sample_to_start_segment(self):
        clock = ManualClock()
        sampled = SampledProfiler(clock=clock, interval=100.0, name="t")
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.FILESYSTEM, SamplingSink(sampled))
        # Started in segment 0, finished well into segment 3: the
        # bucket set active at entry time receives the sample.
        probe.record("read", 310.0, start=40.0)
        pipeline.flush()
        series = sampled.series()
        assert series[0].total_ops() == 1

    def test_batched_segments_byte_match_direct_recording(self):
        # Event-order determinism: draining events through the
        # pipeline's batch buffers must leave every segment
        # byte-identical to recording the same (start, latency) stream
        # straight into a SampledProfiler.
        clock = ManualClock()
        direct = SampledProfiler(clock=clock, interval=100.0, name="x")
        batched = SampledProfiler(clock=clock, interval=100.0, name="x")
        pipeline = Pipeline(batch_size=8)
        probe = pipeline.probe(Layer.FILESYSTEM, SamplingSink(batched))
        stream = [(f"op{i % 3}", float((i * 37) % 500), float(i % 90))
                  for i in range(50)]
        for op, start, latency in stream:
            direct.record(op, start, latency)
            probe.record(op, latency, start=start)
        clock.now = 500.0
        pipeline.flush()
        left, right = direct.series(), batched.series()
        assert len(left) == len(right)
        assert [seg.to_bytes() for seg in left.segments] == \
            [seg.to_bytes() for seg in right.segments]
        assert left.tail_fraction == right.tail_fraction

    def test_fanout_isolates_a_failing_sampling_sink(self):
        # Fault injection: a pre-epoch event makes the SamplingSink's
        # consume() raise.  Under a FanoutSink the failure is counted
        # and the neighboring profile sink still sees every event.
        clock = ManualClock(now=1000.0)
        sampled = SampledProfiler(clock=clock, interval=100.0, name="t")
        pset = ProfileSet(name="t")
        fan = FanoutSink([SamplingSink(sampled), ProfileSink(pset)])
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.FILESYSTEM, fan)
        probe.record("read", 10.0, start=500.0)   # pre-epoch: raises
        probe.record("read", 20.0, start=1500.0)  # fine
        pipeline.flush()
        assert pset.total_ops() == 2
        assert fan.sink_errors == [1, 0]
        assert isinstance(fan.last_errors[0], ValueError)
        assert fan.degraded()

    def test_fanout_survives_sampling_neighbor_raising(self):
        # The converse: the sampler keeps sampling when its neighbor
        # (a dead stream connection, say) throws on every batch.
        clock = ManualClock()
        sampled = SampledProfiler(clock=clock, interval=100.0, name="t")
        fan = FanoutSink([RaisingSink(), SamplingSink(sampled)])
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.FILESYSTEM, fan)
        for i in range(4):
            probe.record("read", 5.0, start=float(i * 60))
        pipeline.flush()
        assert sampled.series().collapse().total_ops() == 4
        assert fan.sink_errors[0] > 0
        assert fan.sink_errors[1] == 0


class TestCorrelationSink:
    def _correlator(self):
        return ValueCorrelator([PeakRange("first", 0, 10)],
                               value_scale=1024.0)

    def test_correlates_context_annotated_values(self):
        correlator = self._correlator()
        pipeline = Pipeline()
        probe = pipeline.probe(
            Layer.FILESYSTEM,
            CorrelationSink(correlator, key="past_eof"))
        ctx = pipeline.new_context("readdir", Layer.FILESYSTEM)
        ctx.annotate("past_eof", 1)
        probe.record("readdir", 100.0, context=ctx)
        pipeline.flush()
        assert sum(correlator.histogram("first").counts().values()) == 1

    def test_operation_filter_and_missing_annotations_skip(self):
        correlator = self._correlator()
        pipeline = Pipeline()
        probe = pipeline.probe(
            Layer.FILESYSTEM,
            CorrelationSink(correlator, key="past_eof",
                            operation="readdir"))
        annotated = pipeline.new_context("readdir", Layer.FILESYSTEM)
        annotated.annotate("past_eof", 1)
        bare = pipeline.new_context("readdir", Layer.FILESYSTEM)
        probe.record("read", 50.0, context=annotated)   # wrong op
        probe.record("readdir", 50.0, context=bare)     # no annotation
        probe.record("readdir", 50.0, context=None)     # no context
        probe.record("readdir", 50.0, context=annotated)
        pipeline.flush()
        total = sum(sum(h.values())
                    for h in correlator.summary().values())
        assert total == 1

    def test_record_batch_matches_per_pair_record(self):
        batched = self._correlator()
        loop = self._correlator()
        pairs = [(float(2 ** (i % 14)), float(i % 2)) for i in range(40)]
        batched.record_batch(pairs)
        for latency, value in pairs:
            loop.record(latency, value)
        assert batched.summary() == loop.summary()


class TestStreamSink:
    def test_pushes_in_batches_and_flushes_remainder(self):
        pushed = []
        pipeline = Pipeline(batch_size=10)
        sink = StreamSink(pushed.append, batch_ops=10)
        probe = pipeline.probe(Layer.FILESYSTEM, sink)
        for i in range(25):
            probe.record("read", float(i + 1))
        pipeline.flush(final=True)
        assert sink.pushes == 3
        assert [p.total_ops() for p in pushed] == [10, 10, 5]
        assert sink.ops_streamed == 25

    def test_no_empty_final_push(self):
        pushed = []
        pipeline = Pipeline()
        sink = StreamSink(pushed.append, batch_ops=5)
        probe = pipeline.probe(Layer.FILESYSTEM, sink)
        for _ in range(5):
            probe.record("read", 3.0)
        pipeline.flush(final=True)
        assert sink.pushes == 1
        assert len(pushed) == 1

    def test_accepts_client_objects_with_push_method(self):
        class FakeClient:
            def __init__(self):
                self.sets = []

            def push(self, pset):
                self.sets.append(pset)
                return "ok"

        client = FakeClient()
        pipeline = Pipeline()
        sink = StreamSink(client, batch_ops=2)
        probe = pipeline.probe(Layer.FILESYSTEM, sink)
        probe.record("read", 1.0)
        probe.record("read", 2.0)
        pipeline.flush()
        assert len(client.sets) == 1

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            StreamSink(lambda pset: None, batch_ops=0)


class TestTraceAndFanout:
    def test_trace_groups_events_per_request(self):
        pipeline = Pipeline()
        trace = TraceSink()
        pipeline.add_global_sink(trace)
        user = pipeline.probe(Layer.USER)
        fs = pipeline.probe(Layer.FILESYSTEM)
        proc = fake_proc()
        root = user.push_context(proc, "read")
        nested = fs.push_context(proc, "readpage")
        fs.record("readpage", 40.0, start=5.0, context=nested)
        ProbePoint.pop_context(proc, nested)
        user.record("read", 100.0, start=0.0, context=root)
        ProbePoint.pop_context(proc, root)
        pipeline.flush()
        requests = trace.requests()
        assert list(requests) == [root.request_id]
        events = requests[root.request_id]
        # Entry-ordered: the outer request first despite post-order emit.
        assert [(e.layer, e.operation, e.depth) for e in events] == [
            (Layer.USER, "read", 0), (Layer.FILESYSTEM, "readpage", 1)]

    def test_global_sink_activates_nullsink_probes(self):
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, NullSink())
        assert not probe.active
        pipeline.add_global_sink(TraceSink())
        assert probe.active

    def test_trace_limit_counts_drops(self):
        pipeline = Pipeline()
        trace = TraceSink(limit=2)
        probe = pipeline.probe(Layer.USER, trace)
        for _ in range(5):
            probe.record("read", 1.0)
        pipeline.flush()
        assert len(trace.events) == 2
        assert trace.dropped == 3

    def test_fanout_delivers_and_flushes_all(self):
        pset = ProfileSet(name="t")
        pushed = []
        fan = FanoutSink([ProfileSink(pset),
                          StreamSink(pushed.append, batch_ops=100)])
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, fan)
        probe.record("read", 9.0)
        pipeline.flush(final=True)
        assert pset.total_ops() == 1
        assert len(pushed) == 1


class RaisingSink:
    """A consumer that always fails (a dead service connection, say)."""

    def __init__(self):
        self.flushes = 0

    def consume(self, layer, events):
        raise ConnectionError("downstream is gone")

    def flush(self):
        self.flushes += 1
        raise ConnectionError("flush failed too")


class TestFanoutIsolation:
    def test_raising_sink_never_starves_the_others(self):
        pset = ProfileSet(name="t")
        fan = FanoutSink([RaisingSink(), ProfileSink(pset)])
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.USER, fan)
        for _ in range(5):
            probe.record("read", 9.0)
        pipeline.flush(final=True)
        # The healthy sink saw every event despite its broken neighbor.
        assert pset.total_ops() == 5

    def test_failures_are_counted_not_silent(self):
        fan = FanoutSink([RaisingSink(), NullSink()])
        fan.consume(Layer.USER, [object()] * 3)
        fan.consume(Layer.USER, [object()] * 2)
        assert fan.sink_errors == [2, 0]
        assert isinstance(fan.last_errors[0], ConnectionError)
        assert fan.last_errors[1] is None
        assert fan.events_dropped == 5
        assert fan.degraded()

    def test_flush_failures_counted_too(self):
        fan = FanoutSink([RaisingSink()])
        fan.flush()
        assert fan.sink_errors == [1]
        assert fan.degraded()

    def test_healthy_fanout_is_not_degraded(self):
        fan = FanoutSink([NullSink()])
        fan.consume(Layer.USER, [object()])
        fan.flush()
        assert not fan.degraded()
        assert fan.metrics()["osprof_sinks_degraded"] == 0

    def test_metrics_shape(self):
        fan = FanoutSink([RaisingSink(), NullSink()])
        fan.consume(Layer.USER, [object()] * 4)
        assert fan.metrics() == {
            "osprof_sink_errors_total": 1,
            "osprof_sink_events_dropped_total": 4,
            "osprof_sinks_degraded": 1,
        }


class TestPipelineValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Pipeline(num_cpus=0)
        with pytest.raises(ValueError):
            Pipeline(batch_size=0)

    def test_per_cpu_buffers_all_drain(self):
        pipeline = Pipeline(num_cpus=2)
        pset = ProfileSet(name="t")
        probe = pipeline.probe(Layer.USER, ProfileSink(pset))
        probe.record("read", 4.0, cpu=0)
        probe.record("read", 6.0, cpu=1)
        assert pipeline.pending_events() == 2
        pipeline.flush()
        assert pset.profile("read", Layer.USER).total_ops == 2

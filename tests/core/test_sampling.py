"""Tests for time-segmented (3-D) profile sampling."""

import pytest

from repro.core.sampling import SampledProfiler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestSampledProfiler:
    def test_requests_land_in_their_start_segment(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=10)
        sp.record("read", start=999, latency=10)
        sp.record("read", start=1000, latency=10)
        sp.record("read", start=2500, latency=10)
        series = sp.series()
        assert len(series) == 3
        assert series[0]["read"].total_ops == 2
        assert series[1]["read"].total_ops == 1
        assert series[2]["read"].total_ops == 1

    def test_record_now_attributes_by_start_time(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        clock.now = 1500
        # Started at 900 (segment 0), completed at 1500 (segment 1).
        sp.record_now("op", latency=600)
        series = sp.series()
        assert series[0]["op"].total_ops == 1

    def test_invalid_interval_rejected(self, clock):
        with pytest.raises(ValueError):
            SampledProfiler(clock, interval=0)

    def test_segments_created_lazily(self, clock):
        sp = SampledProfiler(clock, interval=100)
        sp.record("op", start=950, latency=1)
        assert len(sp.series()) == 10

    def test_negative_latency_clamped(self, clock):
        sp = SampledProfiler(clock, interval=100)
        sp.record("op", start=0, latency=-5)
        assert sp.series()[0]["op"].count(0) == 1


class TestSampledSeries:
    def make_series(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=100)
        sp.record("read", start=0, latency=5000)
        sp.record("write_super", start=1000, latency=1 << 20)
        sp.record("read", start=2000, latency=100)
        return sp.series()

    def test_operations_union(self, clock):
        series = self.make_series(clock)
        assert series.operations() == ["read", "write_super"]

    def test_cells_matrix(self, clock):
        series = self.make_series(clock)
        cells = series.cells("read")
        assert cells[(0, 6)] == 1
        assert cells[(0, 12)] == 1
        assert cells[(2, 6)] == 1
        assert (1, 6) not in cells

    def test_collapse_equals_total(self, clock):
        series = self.make_series(clock)
        total = series.collapse()
        assert total["read"].total_ops == 3
        assert total["write_super"].total_ops == 1

    def test_periodicity_counts_in_range(self, clock):
        series = self.make_series(clock)
        row = series.periodicity("write_super", 15, 25)
        assert row == [0, 1, 0]

    def test_periodicity_missing_op_is_zeroes(self, clock):
        series = self.make_series(clock)
        assert series.periodicity("nope", 0, 60) == [0, 0, 0]

"""Tests for time-segmented (3-D) profile sampling."""

import pytest

from repro.core.sampling import SampledProfiler, SampledProfileSeries


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestSampledProfiler:
    def test_requests_land_in_their_start_segment(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=10)
        sp.record("read", start=999, latency=10)
        sp.record("read", start=1000, latency=10)
        sp.record("read", start=2500, latency=10)
        series = sp.series()
        assert len(series) == 3
        assert series[0]["read"].total_ops == 2
        assert series[1]["read"].total_ops == 1
        assert series[2]["read"].total_ops == 1

    def test_record_now_attributes_by_start_time(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        clock.now = 1500
        # Started at 900 (segment 0), completed at 1500 (segment 1).
        sp.record_now("op", latency=600)
        series = sp.series()
        assert series[0]["op"].total_ops == 1

    def test_invalid_interval_rejected(self, clock):
        with pytest.raises(ValueError):
            SampledProfiler(clock, interval=0)

    def test_segments_created_lazily(self, clock):
        sp = SampledProfiler(clock, interval=100)
        sp.record("op", start=950, latency=1)
        assert len(sp.series()) == 10

    def test_negative_latency_clamped(self, clock):
        sp = SampledProfiler(clock, interval=100)
        sp.record("op", start=0, latency=-5)
        assert sp.series()[0]["op"].count(0) == 1


class TestSampledSeries:
    def make_series(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=100)
        sp.record("read", start=0, latency=5000)
        sp.record("write_super", start=1000, latency=1 << 20)
        sp.record("read", start=2000, latency=100)
        return sp.series()

    def test_operations_union(self, clock):
        series = self.make_series(clock)
        assert series.operations() == ["read", "write_super"]

    def test_cells_matrix(self, clock):
        series = self.make_series(clock)
        cells = series.cells("read")
        assert cells[(0, 6)] == 1
        assert cells[(0, 12)] == 1
        assert cells[(2, 6)] == 1
        assert (1, 6) not in cells

    def test_collapse_equals_total(self, clock):
        series = self.make_series(clock)
        total = series.collapse()
        assert total["read"].total_ops == 3
        assert total["write_super"].total_ops == 1

    def test_periodicity_counts_in_range(self, clock):
        series = self.make_series(clock)
        row = series.periodicity("write_super", 15, 25)
        assert row == [0, 1, 0]

    def test_periodicity_missing_op_is_zeroes(self, clock):
        series = self.make_series(clock)
        assert series.periodicity("nope", 0, 60) == [0, 0, 0]


class TestEdgeCases:
    """Zero segments, partial final interval, non-monotonic clocks.

    These used to be silent: an empty series collapsed to a profile
    with an invented bucket spec, a pre-epoch timestamp landed in
    segment 0 (shifting the Figure 9 time axis), and a mid-interval
    read was indistinguishable from a genuinely quiet tail.
    """

    def test_collapse_of_empty_series_raises(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        with pytest.raises(ValueError, match="empty sampled series"):
            sp.series().collapse()
        with pytest.raises(ValueError, match="empty sampled series"):
            SampledProfileSeries(1000.0, []).collapse()

    def test_empty_series_is_still_inspectable(self, clock):
        # Only collapse() needs a bucket spec; the read-only views of
        # an empty series answer harmlessly.
        series = SampledProfiler(clock, interval=1000).series()
        assert len(series) == 0
        assert series.operations() == []
        assert series.cells("read") == {}
        assert series.periodicity("read", 0, 60) == []

    def test_pre_epoch_timestamp_raises(self, clock):
        clock.now = 5000.0
        sp = SampledProfiler(clock, interval=1000)
        with pytest.raises(ValueError, match="non-monotonic"):
            sp.record("read", start=4999.0, latency=10)
        # The boundary itself is fine.
        sp.record("read", start=5000.0, latency=10)
        assert sp.series()[0]["read"].total_ops == 1

    def test_record_now_with_rolled_back_clock_raises(self, clock):
        clock.now = 2000.0
        sp = SampledProfiler(clock, interval=1000)
        clock.now = 2500.0
        # Completion at 2500 with a claimed 1000-cycle latency puts the
        # start before the epoch: reject, don't mis-bin.
        with pytest.raises(ValueError, match="precedes the sampling"):
            sp.record_now("read", latency=1000.0)

    def test_tail_fraction_of_partial_final_interval(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=10)
        sp.record("read", start=2000, latency=10)
        clock.now = 2250.0
        series = sp.series()
        assert len(series) == 3
        assert series.tail_fraction == pytest.approx(0.25)

    def test_tail_fraction_complete_interval_is_one(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=10)
        clock.now = 1000.0
        assert sp.series().tail_fraction == pytest.approx(1.0)

    def test_tail_fraction_clamped_to_unit_range(self, clock):
        sp = SampledProfiler(clock, interval=1000)
        sp.record("read", start=0, latency=10)
        # Clock far beyond the last materialized segment: reads clamp
        # at 1.0 rather than reporting a >100% interval.
        clock.now = 9999.0
        assert sp.series().tail_fraction == 1.0

    def test_empty_series_tail_fraction_defaults_to_one(self, clock):
        assert SampledProfiler(clock, interval=10).series() \
            .tail_fraction == 1.0

    def test_series_rejects_out_of_range_tail_fraction(self):
        with pytest.raises(ValueError):
            SampledProfileSeries(100.0, [], tail_fraction=1.5)
        with pytest.raises(ValueError):
            SampledProfileSeries(100.0, [], tail_fraction=-0.1)

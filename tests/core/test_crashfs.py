"""Unit tests of the CrashFS op journal and its crash-image semantics.

Each test drives :mod:`repro.core.durable` under a recorder and checks
that :meth:`CrashFS.materialize` reconstructs exactly the states a real
filesystem could be left in — per mode, per crash point.
"""

import pytest

from repro.core import durable
from repro.core.crashfs import MODES, CrashFS


@pytest.fixture
def root(tmp_path):
    live = tmp_path / "live"
    live.mkdir()
    return live


@pytest.fixture
def fs(root):
    shim = CrashFS(root)
    with durable.recording(shim):
        yield shim


def image(fs, tmp_path, point, mode, seed=0):
    return fs.materialize(tmp_path / "img", point, mode, seed=seed)


class TestEndpoints:
    """At the trivial crash points every mode agrees."""

    def test_empty_prefix_is_empty_tree(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"x")
        for mode in MODES:
            img = image(fs, tmp_path, 0, mode)
            assert list(img.iterdir()) == []

    def test_full_prefix_after_full_sync_matches_live(self, fs, root,
                                                      tmp_path):
        durable.write_atomic(root / "a", b"alpha")
        durable.write_atomic(root / "sub" / "b", b"beta")
        end = fs.mark()
        for mode in MODES:
            img = image(fs, tmp_path, end, mode)
            assert (img / "a").read_bytes() == b"alpha"
            assert (img / "sub" / "b").read_bytes() == b"beta"


class TestModeSemantics:
    def test_strict_drops_unsynced_write(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"x", fsync=False)
        img = image(fs, tmp_path, fs.mark(), "strict")
        assert not (img / "f").exists()

    def test_rename_no_data_keeps_name_drops_bytes(self, fs, root,
                                                   tmp_path):
        durable.write_atomic(root / "f", b"payload", fsync=False)
        img = image(fs, tmp_path, fs.mark(), "rename-no-data")
        assert (img / "f").read_bytes() == b""

    def test_rename_no_data_keeps_synced_bytes(self, fs, root, tmp_path):
        # The fixed protocol fsyncs before the rename, so the payload
        # can never lag the name.
        durable.write_atomic(root / "f", b"payload")
        img = image(fs, tmp_path, fs.mark(), "rename-no-data")
        assert (img / "f").read_bytes() == b"payload"

    def test_data_no_rename_drops_unsynced_dirent(self, fs, root,
                                                  tmp_path):
        durable.write_atomic(root / "f", b"payload", fsync=False)
        img = image(fs, tmp_path, fs.mark(), "data-no-rename")
        assert not (img / "f").exists()

    def test_data_no_rename_keeps_dirent_after_dir_fsync(self, fs, root,
                                                         tmp_path):
        durable.write_atomic(root / "f", b"payload")  # ends in fsync_dir
        img = image(fs, tmp_path, fs.mark(), "data-no-rename")
        assert (img / "f").read_bytes() == b"payload"

    def test_flush_keeps_everything(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"payload", fsync=False)
        img = image(fs, tmp_path, fs.mark(), "flush")
        assert (img / "f").read_bytes() == b"payload"

    def test_torn_append_loses_a_proper_suffix(self, fs, root, tmp_path):
        durable.write_file(root / "log", b"HEAD;")
        durable.append_bytes(root / "log", b"0123456789", fsync=False)
        for seed in range(8):
            img = image(fs, tmp_path, fs.mark(), "torn", seed=seed)
            data = (img / "log").read_bytes()
            assert data.startswith(b"HEAD;")
            # At least one dirty byte is always lost: torn != flush.
            assert len(data) < len(b"HEAD;0123456789")

    def test_torn_is_deterministic_per_seed(self, fs, root, tmp_path):
        durable.write_file(root / "log", b"H")
        durable.append_bytes(root / "log", b"abcdefgh", fsync=False)
        a = (image(fs, tmp_path, fs.mark(), "torn", seed=7)
             / "log").read_bytes()
        b = (image(fs, tmp_path, fs.mark(), "torn", seed=7)
             / "log").read_bytes()
        assert a == b

    def test_fsynced_append_survives_torn(self, fs, root, tmp_path):
        durable.write_file(root / "log", b"H")
        durable.append_bytes(root / "log", b"committed")  # fsynced
        img = image(fs, tmp_path, fs.mark(), "torn")
        assert (img / "log").read_bytes() == b"Hcommitted"


class TestCrashPoints:
    def test_mid_protocol_windows(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"x")
        # ops: mkdir? (root exists: no) write fsync replace fsync_dir
        kinds = [op.kind for op in fs.ops]
        assert kinds == ["write", "fsync", "replace", "fsync_dir"]
        # Crash after replace but before fsync_dir: strict mode loses
        # the rename (dirent never committed)...
        img = image(fs, tmp_path, 3, "strict")
        assert not (img / "f").exists()
        # ...but the data-loss mode that keeps dirents serves the full
        # payload, because the fsync landed before the rename.
        img = image(fs, tmp_path, 3, "rename-no-data")
        assert (img / "f").read_bytes() == b"x"

    def test_unsynced_unlink_can_resurrect(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"x")
        durable.unlink(root / "f")
        img = image(fs, tmp_path, fs.mark(), "strict")
        # The unlink dirent change was never fsynced: platter still
        # has the file.  (Sweeps must therefore be idempotent.)
        assert (img / "f").read_bytes() == b"x"
        img = image(fs, tmp_path, fs.mark(), "flush")
        assert not (img / "f").exists()

    def test_validation(self, fs, root, tmp_path):
        durable.write_atomic(root / "f", b"x")
        with pytest.raises(ValueError):
            fs.materialize(tmp_path / "img", 1, "gentle")
        with pytest.raises(ValueError):
            fs.materialize(tmp_path / "img", len(fs.ops) + 1, "flush")


class TestNotes:
    def test_notes_interleave_with_ops(self, fs, root, tmp_path):
        durable.write_atomic(root / "a", b"1")
        fs.note(("acked", 1))
        durable.write_atomic(root / "b", b"2")
        fs.note(("acked", 2))
        mid = fs.ops.index(
            next(op for op in fs.ops if op.kind == "note")) + 1
        assert fs.notes_through(mid) == [("acked", 1)]
        assert fs.notes_through(fs.mark()) == [("acked", 1), ("acked", 2)]
        # Notes never become files.
        img = image(fs, tmp_path, fs.mark(), "flush")
        assert sorted(p.name for p in img.iterdir()) == ["a", "b"]

"""Tests for Profile and ProfileSet."""

import io

import pytest

from repro.core.buckets import BucketSpec
from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet


class TestProfile:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Profile("")

    def test_add_and_passthroughs(self):
        prof = Profile("read", layer=Layer.USER)
        prof.add(100)
        prof.add(3000)
        assert prof.total_ops == 2
        assert prof.total_latency == pytest.approx(3100)
        assert prof.count(6) == 1
        assert prof.count(11) == 1
        assert prof.mean_latency() == pytest.approx(1550)

    def test_merge_same_operation(self):
        a = Profile.from_latencies("read", [10, 20])
        b = Profile.from_latencies("read", [30])
        a.merge(b)
        assert a.total_ops == 3

    def test_merge_name_mismatch_rejected(self):
        a = Profile("read")
        b = Profile("write")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = Profile.from_latencies("read", [10])
        b = a.copy()
        b.add(100)
        assert a.total_ops == 1
        assert b.total_ops == 2

    def test_from_counts(self):
        prof = Profile.from_counts("x", {5: 3, 9: 1})
        assert prof.total_ops == 4
        assert prof.verify_checksum()


class TestProfileSet:
    def make_set(self):
        pset = ProfileSet(name="demo")
        pset.add("read", 100)
        pset.add("read", 100000)
        pset.add("llseek", 400)
        pset.add("write", 2000)
        return pset

    def test_container_protocol(self):
        pset = self.make_set()
        assert "read" in pset
        assert len(pset) == 3
        assert pset.operations() == ["llseek", "read", "write"]
        assert pset["read"].total_ops == 2
        assert pset.get("missing") is None

    def test_totals(self):
        pset = self.make_set()
        assert pset.total_ops() == 4
        assert pset.total_latency() == pytest.approx(102500)

    def test_sorted_by_latency(self):
        pset = self.make_set()
        ranked = pset.by_total_latency()
        assert ranked[0].operation == "read"

    def test_insert_merges_duplicates(self):
        pset = ProfileSet()
        pset.insert(Profile.from_latencies("read", [10]))
        pset.insert(Profile.from_latencies("read", [20]))
        assert pset["read"].total_ops == 2

    def test_insert_wrong_resolution_rejected(self):
        pset = ProfileSet(spec=BucketSpec(1))
        with pytest.raises(ValueError):
            pset.insert(Profile("read", spec=BucketSpec(2)))

    def test_merge_sets(self):
        a = self.make_set()
        b = ProfileSet()
        b.add("read", 50)
        b.add("fsync", 7)
        a.merge(b)
        assert a["read"].total_ops == 3
        assert "fsync" in a

    def test_merge_leaves_source_untouched(self):
        a = self.make_set()
        b = ProfileSet()
        b.add("read", 50)
        a.merge(b)
        a["read"].add(60)
        assert b["read"].total_ops == 1

    def test_roundtrip_text_format(self):
        pset = self.make_set()
        text = pset.dumps()
        loaded = ProfileSet.loads(text)
        assert loaded.operations() == pset.operations()
        for op in pset.operations():
            assert loaded[op].counts() == pset[op].counts()
            assert loaded[op].total_ops == pset[op].total_ops
        assert not loaded.verify_checksums()

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            ProfileSet.load(io.StringIO("not a profile\n"))

    def test_load_rejects_orphan_bucket_line(self):
        bad = "# osprof 1 resolution=1\n5 10\n"
        with pytest.raises(ValueError):
            ProfileSet.loads(bad)

    def test_checksum_verification_reports_bad_ops(self):
        pset = self.make_set()
        # Corrupt one histogram behind the API's back.
        pset["read"].histogram.total_ops += 5
        assert pset.verify_checksums() == ["read"]

    def test_from_operation_latencies(self):
        pset = ProfileSet.from_operation_latencies(
            {"a": [1, 2], "b": [3]})
        assert pset.total_ops() == 3

    def test_resolution_roundtrip(self):
        pset = ProfileSet(spec=BucketSpec(2))
        pset.add("op", 100)
        loaded = ProfileSet.loads(pset.dumps())
        assert loaded.spec.resolution == 2

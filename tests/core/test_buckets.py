"""Unit and property tests for the logarithmic bucket library."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import (BucketSpec, LatencyBuckets, MAX_BUCKET,
                                format_seconds)


class TestBucketSpec:
    def test_bucket_of_powers_of_two(self):
        spec = BucketSpec()
        for exponent in range(0, 40):
            assert spec.bucket(2 ** exponent) == exponent

    def test_bucket_is_floor_of_log2(self):
        spec = BucketSpec()
        assert spec.bucket(3) == 1
        assert spec.bucket(1023) == 9
        assert spec.bucket(1025) == 10

    def test_sub_cycle_latencies_land_in_bucket_zero(self):
        spec = BucketSpec()
        assert spec.bucket(0) == 0
        assert spec.bucket(0.5) == 0

    def test_resolution_two_doubles_density(self):
        # r=2 gives two buckets per octave (Section 3).
        spec = BucketSpec(resolution=2)
        assert spec.bucket(2) == 2
        assert spec.bucket(2.9) == 3
        assert spec.bucket(4) == 4

    def test_bounds_bracket_their_bucket(self):
        spec = BucketSpec()
        for b in range(0, 30):
            assert spec.bucket(spec.low(b)) == b
            assert spec.bucket(math.nextafter(spec.high(b), 0)) == b

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            BucketSpec(0)
        with pytest.raises(ValueError):
            BucketSpec(-1)
        with pytest.raises(ValueError):
            BucketSpec(9)

    def test_equality_by_resolution(self):
        assert BucketSpec(1) == BucketSpec(1)
        assert BucketSpec(1) != BucketSpec(2)
        assert hash(BucketSpec(2)) == hash(BucketSpec(2))

    def test_huge_latency_capped(self):
        spec = BucketSpec()
        assert spec.bucket(2.0 ** 600) == MAX_BUCKET

    def test_label_matches_paper_scale(self):
        # At 1.7 GHz, bucket 5 is ~19-38 ns; the paper labels it 28ns.
        spec = BucketSpec()
        assert spec.label(5).endswith("ns")
        assert spec.label(15).endswith("us")
        assert spec.label(25).endswith("ms")

    @given(st.floats(min_value=1.0, max_value=2.0 ** 62))
    def test_bucket_matches_definition(self, latency):
        # floor(log2): 2^b <= latency < 2^(b+1).  Checked against the
        # power-of-two bounds directly, because math.log2 itself rounds
        # at bucket boundaries.
        spec = BucketSpec()
        b = spec.bucket(latency)
        assert 2.0 ** b <= latency < 2.0 ** (b + 1)

    @given(st.integers(min_value=1, max_value=8),
           st.floats(min_value=1.0, max_value=1e12))
    def test_bucket_monotone_in_latency(self, r, latency):
        spec = BucketSpec(r)
        assert spec.bucket(latency * 2) >= spec.bucket(latency)


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(28e-9) == "28ns"
        assert format_seconds(903e-9) == "903ns"
        assert format_seconds(28e-6) == "28us"
        assert format_seconds(29e-3) == "29ms"
        assert format_seconds(1.5) == "1.5s"


class TestLatencyBuckets:
    def test_add_returns_bucket(self):
        hist = LatencyBuckets()
        assert hist.add(1000) == 9

    def test_totals_track_adds(self):
        hist = LatencyBuckets()
        hist.add(100)
        hist.add(200, count=3)
        assert hist.total_ops == 4
        assert hist.total_latency == pytest.approx(700)
        assert hist.min_latency == 100
        assert hist.max_latency == 200

    def test_checksum_holds(self):
        hist = LatencyBuckets.from_latencies([1, 10, 100, 1000] * 5)
        assert hist.verify_checksum()

    def test_negative_latency_rejected(self):
        hist = LatencyBuckets()
        with pytest.raises(ValueError):
            hist.add(-1)

    def test_zero_count_rejected(self):
        hist = LatencyBuckets()
        with pytest.raises(ValueError):
            hist.add(10, count=0)

    def test_merge_accumulates(self):
        a = LatencyBuckets.from_latencies([10, 20, 30])
        b = LatencyBuckets.from_latencies([1000, 2000])
        a.merge(b)
        assert a.total_ops == 5
        assert a.verify_checksum()
        assert a.max_latency == 2000

    def test_merge_resolution_mismatch_rejected(self):
        a = LatencyBuckets(BucketSpec(1))
        b = LatencyBuckets(BucketSpec(2))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_span_and_as_list(self):
        hist = LatencyBuckets.from_counts({5: 2, 8: 1})
        assert hist.span() == (5, 8)
        assert hist.as_list() == [2, 0, 0, 1]
        assert hist.as_list(first=4, last=9) == [0, 2, 0, 0, 1, 0]

    def test_span_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyBuckets().span()

    def test_mean_latency(self):
        hist = LatencyBuckets.from_latencies([100, 300])
        assert hist.mean_latency() == pytest.approx(200)
        assert LatencyBuckets().mean_latency() == 0.0

    def test_add_to_bucket_keeps_checksum_consistent(self):
        hist = LatencyBuckets()
        hist.add_to_bucket(7, count=10)
        assert hist.count(7) == 10
        assert hist.verify_checksum()
        assert hist.total_latency > 0

    def test_iteration_yields_sorted_stats(self):
        hist = LatencyBuckets.from_counts({9: 3, 4: 1})
        stats = list(hist)
        assert [s.index for s in stats] == [4, 9]
        assert stats[0].low == 16.0
        assert stats[0].high == 32.0

    def test_equality(self):
        a = LatencyBuckets.from_latencies([10, 100])
        b = LatencyBuckets.from_latencies([10, 100])
        assert a == b
        b.add(5)
        assert a != b

    @given(st.lists(st.floats(min_value=0, max_value=1e15),
                    min_size=1, max_size=200))
    def test_checksum_invariant_random(self, latencies):
        hist = LatencyBuckets.from_latencies(latencies)
        assert hist.verify_checksum()
        assert hist.total_ops == len(latencies)

    @given(st.lists(st.floats(min_value=1, max_value=1e12),
                    min_size=1, max_size=100),
           st.lists(st.floats(min_value=1, max_value=1e12),
                    min_size=1, max_size=100))
    def test_merge_equals_union(self, xs, ys):
        merged = LatencyBuckets.from_latencies(xs)
        merged.merge(LatencyBuckets.from_latencies(ys))
        union = LatencyBuckets.from_latencies(xs + ys)
        assert merged.counts() == union.counts()
        assert merged.total_ops == union.total_ops

    def test_estimated_latency_close_to_true(self):
        hist = LatencyBuckets.from_latencies([100] * 50)
        # Midpoint of bucket 6 is 96; within a factor of bucket width.
        assert hist.estimated_latency() == pytest.approx(
            hist.total_latency, rel=0.5)


class TestBatchedBucketingProperty:
    """add_many must bucket exactly like add: floor(log2(latency))."""

    @staticmethod
    def _exact_bucket(latency: float) -> int:
        # frexp gives the exact binary exponent; math.log2 rounds and
        # misplaces values adjacent to powers of two, so it cannot
        # serve as the oracle here.
        if latency < 1.0:
            return 0
        return min(math.frexp(latency)[1] - 1, MAX_BUCKET)

    @given(st.lists(st.floats(min_value=0, max_value=1e18),
                    min_size=1, max_size=300))
    def test_add_many_lands_every_sample_in_floor_log2(self, latencies):
        hist = LatencyBuckets()
        hist.add_many(latencies)
        expected = {}
        for lat in latencies:
            b = self._exact_bucket(lat)
            expected[b] = expected.get(b, 0) + 1
        assert hist.counts() == expected

    @given(st.lists(st.floats(min_value=0, max_value=1e18),
                    min_size=1, max_size=300))
    def test_add_many_identical_to_per_sample_add(self, latencies):
        batched = LatencyBuckets()
        batched.add_many(latencies)
        loop = LatencyBuckets()
        for lat in latencies:
            loop.add(lat)
        assert batched.counts() == loop.counts()
        assert batched.total_ops == loop.total_ops
        assert batched.min_latency == loop.min_latency
        assert batched.max_latency == loop.max_latency
        # Exact equality, not approx: both paths keep Shewchuk partial
        # sums, so the accumulated total is the true multiset sum.
        assert batched.total_latency == loop.total_latency

    @given(st.integers(min_value=0, max_value=MAX_BUCKET - 1))
    def test_power_of_two_boundaries_exact(self, exponent):
        below = float(2 ** exponent) - (2.0 ** (exponent - 53) if
                                        exponent >= 1 else 0.5)
        at = float(2 ** exponent)
        hist = LatencyBuckets()
        hist.add_many([below, at])
        if exponent == 0:
            assert hist.counts() == {0: 2}
        else:
            assert hist.counts()[exponent] == 1
            assert hist.counts()[self._exact_bucket(below)] >= 1


class TestLatencyResidual:
    """The encode-rounding escape hatch used by the warehouse."""

    def test_exact_totals_have_no_residual(self):
        hist = LatencyBuckets()
        hist.add(100.0)
        hist.add(28.0)
        assert hist.latency_residual() == []

    def test_residual_plus_rounded_total_is_exact(self):
        # Three values whose exact sum is not a float64: the fsum
        # collapse rounds, the residual is exactly what it dropped.
        hist = LatencyBuckets()
        for value in (1e16, 1.0, 1e-3):
            hist.add(value)
        residual = hist.latency_residual()
        assert residual  # rounding really happened
        restored = LatencyBuckets()
        restored.total_latency = hist.total_latency  # the encoded float
        restored.correct_total_latency(residual)
        assert restored.total_latency == hist.total_latency
        # And merging two corrected histograms stays order-independent.
        a, b = LatencyBuckets(), LatencyBuckets()
        a.total_latency = hist.total_latency
        a.correct_total_latency(residual)
        b.add(2.5e-3)
        ab, ba = LatencyBuckets(), LatencyBuckets()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.total_latency == ba.total_latency

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e18),
                    min_size=1, max_size=100))
    def test_round_trip_is_sum_exact(self, latencies):
        hist = LatencyBuckets()
        for lat in latencies:
            hist.add(lat)
        # Simulate the codec: one float64 out, residual kept aside.
        encoded = hist.total_latency
        residual = hist.latency_residual()
        restored = LatencyBuckets()
        restored.total_latency = encoded
        restored.correct_total_latency(residual)
        # The restored *value* is exact (expansion components may be
        # arranged differently — only the represented sum is canonical,
        # and the codec encodes only that).
        assert restored.total_latency == hist.total_latency
        # A second encode/restore cycle is therefore stable.
        again = LatencyBuckets()
        again.total_latency = restored.total_latency
        again.correct_total_latency(restored.latency_residual())
        assert again.total_latency == encoded

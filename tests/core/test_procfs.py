"""Tests for the /proc reporting interface."""

import pytest

from repro.core.procfs import PROC_ROOT, ProcFs
from repro.core.profiler import Profiler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def procfs():
    return ProcFs()


def make_profiler(clock, samples=3):
    profiler = Profiler(name="fs", clock=clock)
    for _ in range(samples):
        with profiler.request("read"):
            clock.now += 1000
    return profiler


class TestRegistration:
    def test_register_returns_path(self, procfs, clock):
        path = procfs.register("fs", make_profiler(clock))
        assert path == f"{PROC_ROOT}/fs"
        assert procfs.ls() == [path]

    def test_duplicate_rejected(self, procfs, clock):
        procfs.register("fs", make_profiler(clock))
        with pytest.raises(ValueError):
            procfs.register("fs", make_profiler(clock))

    def test_bad_names_rejected(self, procfs, clock):
        with pytest.raises(ValueError):
            procfs.register("", make_profiler(clock))
        with pytest.raises(ValueError):
            procfs.register("a/b", make_profiler(clock))

    def test_unregister(self, procfs, clock):
        procfs.register("fs", make_profiler(clock))
        procfs.unregister("fs")
        assert procfs.ls() == []


class TestFileInterface:
    def test_read_returns_serialized_profiles(self, procfs, clock):
        path = procfs.register("fs", make_profiler(clock))
        text = procfs.read(path)
        assert text.startswith("# osprof 1")
        assert "op read" in text

    def test_snapshot_roundtrips(self, procfs, clock):
        path = procfs.register("fs", make_profiler(clock))
        snap = procfs.snapshot(path)
        assert snap["read"].total_ops == 3

    def test_snapshot_is_point_in_time(self, procfs, clock):
        profiler = make_profiler(clock)
        path = procfs.register("fs", profiler)
        snap = procfs.snapshot(path)
        with profiler.request("read"):
            clock.now += 1
        assert snap["read"].total_ops == 3
        assert procfs.snapshot(path)["read"].total_ops == 4

    def test_missing_path(self, procfs):
        with pytest.raises(FileNotFoundError):
            procfs.read(f"{PROC_ROOT}/nope")
        with pytest.raises(FileNotFoundError):
            procfs.read("/etc/passwd")

    def test_write_reset_clears(self, procfs, clock):
        profiler = make_profiler(clock)
        path = procfs.register("fs", profiler)
        procfs.write(path, "reset\n")
        assert procfs.snapshot(path).total_ops() == 0

    def test_write_enable_disable(self, procfs, clock):
        profiler = make_profiler(clock)
        path = procfs.register("fs", profiler)
        procfs.write(path, "disable")
        with profiler.request("read"):
            clock.now += 1
        assert procfs.snapshot(path)["read"].total_ops == 3
        procfs.write(path, "enable")
        with profiler.request("read"):
            clock.now += 1
        assert procfs.snapshot(path)["read"].total_ops == 4

    def test_unknown_command_rejected(self, procfs, clock):
        path = procfs.register("fs", make_profiler(clock))
        with pytest.raises(ValueError):
            procfs.write(path, "explode")

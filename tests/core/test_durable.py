"""Unit tests of the shared durable-write funnel (repro.core.durable).

The crash-consistency matrix (tests/integration/test_crash_matrix.py)
proves these primitives compose into safe commit protocols; this file
pins their local contracts — bytes on disk, journaled op streams, and
the exact fsync placement of the four-step atomic write.
"""

import pytest

from repro.core import durable
from repro.core.crashfs import CrashFS


@pytest.fixture
def fs(tmp_path):
    """A CrashFS recording every durable op under tmp_path."""
    shim = CrashFS(tmp_path)
    with durable.recording(shim):
        yield shim


def ops(fs, kind=None):
    if kind is None:
        return [(op.kind, op.path) for op in fs.ops]
    return [(op.kind, op.path) for op in fs.ops if op.kind == kind]


class TestWriteAtomic:
    def test_publishes_bytes(self, tmp_path):
        durable.write_atomic(tmp_path / "f", b"hello")
        assert (tmp_path / "f").read_bytes() == b"hello"

    def test_overwrites(self, tmp_path):
        durable.write_atomic(tmp_path / "f", b"old")
        durable.write_atomic(tmp_path / "f", b"new")
        assert (tmp_path / "f").read_bytes() == b"new"

    def test_no_temp_residue(self, tmp_path):
        durable.write_atomic(tmp_path / "sub" / "f", b"x")
        names = [p.name for p in (tmp_path / "sub").iterdir()]
        assert names == ["f"]

    def test_op_sequence_is_the_four_step_commit(self, fs, tmp_path):
        durable.write_atomic(tmp_path / "d" / "f", b"x")
        kinds = [op.kind for op in fs.ops]
        assert kinds == ["mkdir", "write", "fsync", "replace",
                         "fsync_dir"]
        # fsync targets the temp file (pre-rename), fsync_dir the parent.
        assert fs.ops[2].path == "d/.tmp-f"
        assert fs.ops[3].dest == "d/f"
        assert fs.ops[4].path == "d"

    def test_fsync_false_drops_both_syncs(self, fs, tmp_path):
        # The historical bug, kept only for the regression matrix.
        durable.write_atomic(tmp_path / "f", b"x", fsync=False)
        kinds = [op.kind for op in fs.ops]
        assert "fsync" not in kinds
        assert "fsync_dir" not in kinds
        assert (tmp_path / "f").read_bytes() == b"x"


class TestAppendAndTruncate:
    def test_append_accumulates(self, tmp_path):
        durable.write_file(tmp_path / "log", b"head;")
        durable.append_bytes(tmp_path / "log", b"a")
        durable.append_bytes(tmp_path / "log", b"b")
        assert (tmp_path / "log").read_bytes() == b"head;ab"

    def test_append_journals_fsync(self, fs, tmp_path):
        durable.write_file(tmp_path / "log", b"h")
        durable.append_bytes(tmp_path / "log", b"a")
        assert [op.kind for op in fs.ops].count("fsync") == 2

    def test_truncate(self, fs, tmp_path):
        durable.write_file(tmp_path / "log", b"abcdef")
        durable.truncate(tmp_path / "log", 2)
        assert (tmp_path / "log").read_bytes() == b"ab"
        assert fs.ops[-1].kind == "truncate"
        assert fs.ops[-1].size == 2


class TestNamespaceOps:
    def test_unlink_returns_whether_removed(self, tmp_path):
        durable.write_atomic(tmp_path / "f", b"x")
        assert durable.unlink(tmp_path / "f") is True
        assert durable.unlink(tmp_path / "f") is False

    def test_unlink_missing_not_ok_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            durable.unlink(tmp_path / "nope", missing_ok=False)

    def test_replace_moves(self, tmp_path):
        durable.write_atomic(tmp_path / "a", b"x")
        durable.replace(tmp_path / "a", tmp_path / "b")
        assert not (tmp_path / "a").exists()
        assert (tmp_path / "b").read_bytes() == b"x"

    def test_ensure_dir_records_only_on_create(self, fs, tmp_path):
        durable.ensure_dir(tmp_path / "d")
        durable.ensure_dir(tmp_path / "d")
        assert len(ops(fs, "mkdir")) == 1


class TestRecorderScoping:
    def test_recording_restores_previous(self, tmp_path):
        outer = CrashFS(tmp_path)
        inner = CrashFS(tmp_path)
        with durable.recording(outer):
            with durable.recording(inner):
                durable.write_atomic(tmp_path / "f", b"x")
            durable.write_atomic(tmp_path / "g", b"y")
        assert any(op.dest == "f" for op in inner.ops)
        assert not any(op.dest == "f" for op in outer.ops)
        assert any(op.dest == "g" for op in outer.ops)

    def test_no_recorder_is_silent(self, tmp_path):
        durable.set_recorder(None)
        durable.write_atomic(tmp_path / "f", b"x")  # must not raise
        assert (tmp_path / "f").read_bytes() == b"x"

    def test_ops_outside_root_ignored(self, tmp_path):
        shim = CrashFS(tmp_path / "inside")
        (tmp_path / "inside").mkdir()
        with durable.recording(shim):
            durable.write_atomic(tmp_path / "outside.bin", b"x")
        assert shim.ops == []

"""Tests for the packet sniffer and timeline rendering."""

import pytest

from repro.net.sniffer import CapturedPacket, Sniffer, render_timeline
from repro.sim.engine import CYCLES_PER_SECOND


def packet(seq, t_ms, src="client", dst="server", size=100,
           describe="data", is_data=True):
    cycles = t_ms * 1e-3 * CYCLES_PER_SECOND
    return CapturedPacket(seq=seq, time=cycles, sent_at=cycles - 1000,
                          src=src, dst=dst, size=size,
                          describe=describe, is_data=is_data)


class TestSniffer:
    def test_between_filters_by_time(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(1, 0), packet(2, 10), packet(3, 20)]
        window = sniffer.between(5e-3 * CYCLES_PER_SECOND,
                                 15e-3 * CYCLES_PER_SECOND)
        assert [p.seq for p in window] == [2]

    def test_stalls_finds_gaps(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(1, 0), packet(2, 5), packet(3, 210),
                           packet(4, 214)]
        stalls = sniffer.stalls(threshold_seconds=0.1)
        assert len(stalls) == 1
        assert stalls[0] == pytest.approx(0.205)

    def test_stalls_unsorted_input(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(2, 210), packet(1, 0)]
        assert len(sniffer.stalls(0.1)) == 1

    def test_clear(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(1, 0)]
        sniffer.clear()
        assert sniffer.packets == []

    def test_time_ms_helper(self):
        p = packet(1, 25)
        assert p.time_ms() == pytest.approx(25)
        assert p.time_ms(epoch=5e-3 * CYCLES_PER_SECOND) == \
            pytest.approx(20)


class TestRenderTimeline:
    def test_directions(self):
        sniffer = Sniffer()
        sniffer.packets = [
            packet(1, 0, src="client", dst="server",
                   describe="request"),
            packet(2, 1, src="server", dst="client", describe="reply"),
        ]
        text = render_timeline(sniffer, "client", "server")
        lines = text.splitlines()
        assert ">|" in lines[1]      # client -> server
        assert "|<" in lines[2]      # server -> client
        assert "request" in lines[1]
        assert "reply" in lines[2]

    def test_limit(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(i, i) for i in range(10)]
        text = render_timeline(sniffer, "client", "server", limit=3)
        assert len(text.splitlines()) == 4  # header + 3 packets

    def test_relative_timestamps(self):
        sniffer = Sniffer()
        sniffer.packets = [packet(1, 100), packet(2, 300)]
        text = render_timeline(sniffer, "client", "server")
        # First packet is the epoch: ~0 ms; second ~200 ms later.
        assert "   0.0" in text.splitlines()[1]
        assert "200" in text.splitlines()[2]

    def test_empty(self):
        assert "no packets" in render_timeline(Sniffer(), "a", "b")

"""Tests for the TCP model: delivery, delayed ACKs, piggybacking."""

import pytest

from repro.net.sniffer import Sniffer
from repro.net.tcp import (DELAYED_ACK_TIMEOUT, Packet, TcpConnection,
                           TcpEndpoint)
from repro.sim.engine import seconds
from repro.sim.scheduler import Kernel


def make_pair(client_immediate=False, server_immediate=True,
              sniffer=None):
    k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
    client = TcpEndpoint("client", k, ack_immediately=client_immediate)
    server = TcpEndpoint("server", k, ack_immediately=server_immediate)
    conn = TcpConnection(k, client, server, sniffer=sniffer)
    return k, client, server, conn


class TestDelivery:
    def test_data_arrives_with_latency(self):
        k, client, server, conn = make_pair()
        got = []
        server.on_receive = lambda p: got.append((p.payload, k.now))
        client.send(100, "hello", payload="hi")
        k.run(max_events=50)
        assert got[0][0] == "hi"
        assert got[0][1] >= conn.latency

    def test_serialization_orders_same_sender(self):
        k, client, server, conn = make_pair()
        got = []
        server.on_receive = lambda p: got.append(p.describe)
        client.send(1460, "first")
        client.send(1460, "second")
        k.run(max_events=50)
        assert got == ["first", "second"]

    def test_big_packets_take_longer(self):
        k, client, server, conn = make_pair()
        times = []
        server.on_receive = lambda p: times.append(k.now)
        client.send(1460, "big")
        k.run(max_events=50)
        k2, c2, s2, conn2 = make_pair()
        times2 = []
        s2.on_receive = lambda p: times2.append(k2.now)
        c2.send(40, "small")
        k2.run(max_events=50)
        assert times[0] > times2[0]

    def test_endpoint_names_must_differ(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        a = TcpEndpoint("x", k)
        b = TcpEndpoint("x", k)
        with pytest.raises(ValueError):
            TcpConnection(k, a, b)


class TestDelayedAck:
    def test_single_segment_ack_delayed_200ms(self):
        k, client, server, conn = make_pair(server_immediate=False)
        client.send(100, "lone segment")
        k.run(until=seconds(0.5))
        assert server.delayed_acks_sent == 1
        assert server.immediate_acks_sent == 0
        assert client.peer_acked_through == 1

    def test_second_segment_forces_immediate_ack(self):
        k, client, server, conn = make_pair(server_immediate=False)
        client.send(100, "one")
        client.send(100, "two")
        k.run(until=seconds(0.01))
        assert server.immediate_acks_sent == 1
        assert server.delayed_acks_sent == 0

    def test_ack_immediately_endpoint_never_delays(self):
        k, client, server, conn = make_pair(server_immediate=True)
        client.send(100, "x")
        k.run(until=seconds(0.01))
        assert server.immediate_acks_sent == 1

    def test_outgoing_data_piggybacks_ack(self):
        k, client, server, conn = make_pair(server_immediate=False)
        responded = []

        def reply(packet):
            if packet.is_data:
                server.send(100, "reply")
                responded.append(k.now)

        server.on_receive = reply
        client.send(100, "request")
        k.run(until=seconds(0.01))
        # No standalone ACK needed: the reply carried it.
        assert server.piggybacked_acks == 1
        assert server.delayed_acks_sent == 0
        assert client.peer_acked_through == 1

    def test_delayed_ack_is_200ms(self):
        k, client, server, conn = make_pair(server_immediate=False)
        ack_times = []
        original = client.deliver

        def spy(packet):
            if not packet.is_data:
                ack_times.append(k.now)
            original(packet)

        client.deliver = spy
        client.send(100, "x")
        k.run(until=seconds(0.5))
        assert ack_times
        assert ack_times[0] >= DELAYED_ACK_TIMEOUT


class TestWhenAllAcked:
    def test_callback_after_everything_acked(self):
        k, client, server, conn = make_pair(server_immediate=True)
        fired = []
        client.send(100, "a")
        client.send(100, "b")
        client.when_all_acked(lambda: fired.append(k.now))
        assert not fired
        k.run(until=seconds(0.01))
        assert fired

    def test_callback_immediate_if_nothing_outstanding(self):
        k, client, server, conn = make_pair()
        fired = []
        client.when_all_acked(lambda: fired.append(True))
        assert fired == [True]


class TestSnifferIntegration:
    def test_packets_captured_on_delivery(self):
        sniffer = Sniffer()
        k, client, server, conn = make_pair(sniffer=sniffer)
        client.send(100, "data")
        k.run(until=seconds(0.5))
        descriptions = [p.describe for p in sniffer.packets]
        assert "data" in descriptions
        assert any("ACK" in d for d in descriptions)

    def test_stall_detection(self):
        sniffer = Sniffer()
        k, client, server, conn = make_pair(server_immediate=False,
                                            sniffer=sniffer)
        client.send(100, "x")  # delayed ACK: ~200ms gap
        k.run(until=seconds(0.5))
        stalls = sniffer.stalls(threshold_seconds=0.1)
        assert len(stalls) == 1
        assert stalls[0] == pytest.approx(0.2, rel=0.05)

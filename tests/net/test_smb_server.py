"""Tests for SMB message sizing and the CIFS server's burst discipline."""

import pytest

from repro.net.cifs_server import CifsServer
from repro.net.smb import (ENTRY_WIRE_SIZE, FIND_BATCH, DirEntryInfo,
                           FindFirstRequest, FindNextRequest, FindReply,
                           ReadReply, ReadRequest)
from repro.net.tcp import MAX_SEGMENT, TcpConnection, TcpEndpoint
from repro.sim.engine import seconds
from repro.sim.scheduler import Kernel
from repro.system import System
from repro.workloads import build_source_tree


class TestWireSizes:
    def test_find_reply_scales_with_entries(self):
        empty = FindReply(mid=1, entries=[])
        one = FindReply(mid=1, entries=[
            DirEntryInfo("a", 2, False, 10)])
        assert one.wire_size() - empty.wire_size() == ENTRY_WIRE_SIZE

    def test_read_reply_includes_data(self):
        small = ReadReply(mid=1, ino=2, offset=0, length=100)
        big = ReadReply(mid=1, ino=2, offset=0, length=4096)
        assert big.wire_size() - small.wire_size() == 4096 - 100

    def test_requests_are_small(self):
        assert FindFirstRequest(1, 2).wire_size() < MAX_SEGMENT
        assert FindNextRequest(1, 2).wire_size() < MAX_SEGMENT
        assert ReadRequest(1, 2, 0, 4096).wire_size() < MAX_SEGMENT


def make_server_pair(burst_segments=3):
    host = System.build(with_timer=False, instrumentation="off")
    root, _ = build_source_tree(host, scale=0.01)
    kernel = host.kernel
    client = TcpEndpoint("client", kernel, ack_immediately=True)
    server_ep = TcpEndpoint("server", kernel, ack_immediately=True)
    TcpConnection(kernel, client, server_ep)
    server = CifsServer(kernel, host.inodes, server_ep,
                        burst_segments=burst_segments)
    return kernel, host, root, client, server


class TestServerInternals:
    def test_segment_sizes_cover_reply(self):
        kernel, host, root, client, server = make_server_pair()
        sizes = server._segment_sizes(4000)
        assert sum(sizes) == 4000
        assert all(s <= MAX_SEGMENT for s in sizes)
        assert server._segment_sizes(0) == [40]

    def test_find_first_reply_received(self):
        kernel, host, root, client, server = make_server_pair()
        replies = []
        client.on_receive = lambda p: (
            replies.append(p.payload) if p.payload else None)
        client.send(FindFirstRequest(7, root.ino).wire_size(), "req",
                    FindFirstRequest(7, root.ino))
        kernel.run(until=seconds(1.0))
        assert len(replies) == 1
        reply = replies[0]
        assert isinstance(reply, FindReply)
        assert len(reply.entries) == min(FIND_BATCH, len(root.entries))

    def test_cookie_continues_listing(self):
        kernel, host, root, client, server = make_server_pair()
        # Find a directory larger than one batch.
        big = [i for i in host.inodes._inodes.values()
               if i.is_dir and len(i.entries) > FIND_BATCH]
        if not big:
            pytest.skip("no large directory at this scale")
        directory = big[0]
        replies = []
        client.on_receive = lambda p: (
            replies.append(p.payload) if p.payload else None)
        client.send(100, "req", FindFirstRequest(1, directory.ino))
        kernel.run(until=seconds(1.0))
        first = replies[-1]
        assert not first.end_of_search
        assert first.cookie is not None
        client.send(100, "req", FindNextRequest(2, first.cookie))
        kernel.run(until=seconds(2.0))
        second = replies[-1]
        names = [e.name for e in first.entries + second.entries]
        assert names == [e.name for e in
                         directory.entries[:len(names)]]

    def test_warm_listing_faster_than_cold(self):
        kernel, host, root, client, server = make_server_pair()
        times = []
        client.on_receive = lambda p: (
            times.append(kernel.now) if p.payload else None)
        t0 = kernel.now
        client.send(100, "req", FindFirstRequest(1, root.ino))
        kernel.run(until=seconds(1.0))
        cold = times[-1] - t0
        t1 = kernel.now
        client.send(100, "req", FindFirstRequest(2, root.ino))
        kernel.run(until=seconds(2.0))
        warm = times[-1] - t1
        assert warm < cold / 3

    def test_burst_size_validation(self):
        kernel, host, root, client, server = make_server_pair()
        with pytest.raises(ValueError):
            CifsServer(kernel, host.inodes,
                       TcpEndpoint("x", kernel), burst_segments=0)

    def test_read_service_warms_per_page(self):
        kernel, host, root, client, server = make_server_pair()
        f = next(i for i in host.inodes._inodes.values()
                 if not i.is_dir and i.size > 8192)
        cold0 = server._read_service(f.ino, 0)
        warm0 = server._read_service(f.ino, 0)
        cold1 = server._read_service(f.ino, 4096)
        assert warm0 < cold0
        assert cold1 == pytest.approx(cold0)

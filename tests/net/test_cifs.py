"""Tests for the CIFS client/server pair and the Figure 10/11 pathology."""

import pytest

from repro.net.mount import build_cifs_mount
from repro.net.sniffer import render_timeline
from repro.net.smb import FIND_BATCH
from repro.workloads.grep import run_grep


@pytest.fixture(scope="module")
def windows_mount():
    m = build_cifs_mount(scale=0.01, flavor="windows", delayed_ack=True)
    run_grep(m.client, m.root)
    return m


@pytest.fixture(scope="module")
def linux_mount():
    m = build_cifs_mount(scale=0.01, flavor="linux")
    run_grep(m.client, m.root)
    return m


class TestListingCorrectness:
    def test_grep_sees_whole_tree(self, windows_mount):
        m = windows_mount
        # Every file the tree builder created was scanned.
        assert m.tree.files > 0

    def test_same_results_regardless_of_flavor(self):
        a = build_cifs_mount(scale=0.005, flavor="windows")
        ra = run_grep(a.client, a.root)
        b = build_cifs_mount(scale=0.005, flavor="linux")
        rb = run_grep(b.client, b.root)
        assert ra.files == rb.files
        assert ra.directories == rb.directories
        assert ra.bytes_scanned == rb.bytes_scanned

    def test_find_next_used_for_big_directories(self, windows_mount):
        m = windows_mount
        pset = m.client.fs_profiles()
        big_dirs = sum(1 for inode in m.client.inodes._inodes.values()
                       if inode.is_dir and inode.size > FIND_BATCH)
        if big_dirs:
            assert pset.get("FIND_NEXT") is not None


class TestDelayedAckPathology:
    def test_windows_client_has_rightmost_peaks(self, windows_mount):
        pset = windows_mount.client.fs_profiles()
        ff = pset["FIND_FIRST"]
        # Stalled transactions: >= 100ms => buckets 27+.
        assert any(b >= 27 for b in ff.counts())

    def test_linux_client_lacks_rightmost_peaks(self, linux_mount):
        pset = linux_mount.client.fs_profiles()
        ff = pset["FIND_FIRST"]
        assert all(b < 27 for b in ff.counts())

    def test_stalls_only_with_delayed_ack(self, windows_mount,
                                          linux_mount):
        assert windows_mount.sniffer.stalls(0.15)
        assert not linux_mount.sniffer.stalls(0.15)

    def test_registry_fix_removes_stalls(self):
        m = build_cifs_mount(scale=0.01, flavor="windows",
                             delayed_ack=False)
        run_grep(m.client, m.root)
        assert not m.sniffer.stalls(0.15)

    def test_fix_improves_elapsed_time(self):
        slow = build_cifs_mount(scale=0.01, flavor="windows",
                                delayed_ack=True)
        run_grep(slow.client, slow.root)
        fast = build_cifs_mount(scale=0.01, flavor="windows",
                                delayed_ack=False)
        run_grep(fast.client, fast.root)
        assert fast.client.elapsed_seconds() < \
            slow.client.elapsed_seconds()

    def test_network_ops_beyond_bucket_18(self, windows_mount):
        # "instances of an operation which fall into bucket 18 and
        # higher involve interaction with the server."
        pset = windows_mount.client.fs_profiles()
        ff = pset["FIND_FIRST"]
        assert min(ff.counts()) >= 18

    def test_buffered_find_next_is_local(self, windows_mount):
        pset = windows_mount.client.fs_profiles()
        fn = pset.get("FIND_NEXT")
        if fn is None:
            pytest.skip("tree too small for FIND_NEXT")
        counts = fn.counts()
        local = sum(c for b, c in counts.items() if b < 18)
        assert local > 0


class TestTimeline:
    def test_timeline_renders_exchange(self, windows_mount):
        text = render_timeline(windows_mount.sniffer, "client", "server",
                               limit=12)
        assert "FIND" in text
        assert "|<" in text and ">|" in text

    def test_empty_sniffer(self):
        from repro.net.sniffer import Sniffer
        assert "no packets" in render_timeline(Sniffer(), "a", "b")

"""Tests for the NFS client/server pair."""

import pytest

from repro.net import build_cifs_mount, build_nfs_mount
from repro.net.nfs import NFS_MAX_READ
from repro.sim.engine import seconds
from repro.workloads import run_grep


@pytest.fixture(scope="module")
def nfs_mount():
    mount = build_nfs_mount(scale=0.01, delayed_ack=True)
    run_grep(mount.client, mount.root)
    return mount


class TestCorrectness:
    def test_grep_scans_whole_tree(self, nfs_mount):
        assert nfs_mount.tree.files > 0
        # grep counted every file the tree builder created; reuse its
        # numbers through a fresh run for isolation.
        m = build_nfs_mount(scale=0.005)
        result = run_grep(m.client, m.root)
        assert result.files == m.tree.files
        assert result.bytes_scanned == m.tree.total_bytes

    def test_same_results_as_cifs(self):
        nfs = build_nfs_mount(scale=0.005)
        r_nfs = run_grep(nfs.client, nfs.root)
        cifs = build_cifs_mount(scale=0.005, flavor="linux")
        r_cifs = run_grep(cifs.client, cifs.root)
        assert r_nfs.files == r_cifs.files
        assert r_nfs.bytes_scanned == r_cifs.bytes_scanned


class TestNoDelayedAckPathology:
    def test_no_stalls_despite_delayed_ack_client(self, nfs_mount):
        # The structural claim: the NFS server never waits for ACKs,
        # so the Windows-client delayed-ACK timer has nothing to stall.
        assert nfs_mount.sniffer.stalls(0.15) == []

    def test_no_far_right_peaks(self, nfs_mount):
        pset = nfs_mount.client.fs_profiles()
        for op in ("nfs_readdir", "nfs_read"):
            prof = pset.get(op)
            if prof is not None:
                assert all(b < 27 for b in prof.counts())

    def test_cifs_windows_slower_than_nfs(self):
        nfs = build_nfs_mount(scale=0.01, delayed_ack=True)
        run_grep(nfs.client, nfs.root)
        cifs = build_cifs_mount(scale=0.01, flavor="windows",
                                delayed_ack=True)
        run_grep(cifs.client, cifs.root)
        assert nfs.client.elapsed_seconds() < \
            cifs.client.elapsed_seconds()


class TestClientCaches:
    def test_rereads_hit_client_page_cache(self):
        m = build_nfs_mount(scale=0.005)
        run_grep(m.client, m.root)
        rpcs_first = m.client.fs.rpcs_sent
        run_grep(m.client, m.root)  # everything now cached
        rpcs_second = m.client.fs.rpcs_sent - rpcs_first
        # Second pass: no READ RPCs (pages cached); READDIRs are
        # re-issued per new directory handle.
        assert rpcs_second < rpcs_first / 2

    def test_attr_cache_ttl(self):
        m = build_nfs_mount(scale=0.005)
        client = m.client.fs

        def body(proc):
            yield from client.getattr(proc, m.root.ino)
            yield from client.getattr(proc, m.root.ino)  # cached
            return None

        p = m.client.kernel.spawn(body, "stat")
        m.client.run([p])
        assert client.attr_hits == 1

    def test_read_rpc_bounded_by_protocol_max(self, nfs_mount):
        # Every READ call asked for at most NFS_MAX_READ bytes: the
        # reply wire size is bounded accordingly.
        big = [p for p in nfs_mount.sniffer.packets
               if "READ reply" in p.describe]
        assert big, "some reads went over the wire"
        # reply payload <= header + one page (we request page-sized).
        assert all(p.size <= 1460 for p in big)


class TestReaddirCookies:
    def test_large_directory_paginates(self):
        m = build_nfs_mount(scale=0.01)
        # Find a directory with more entries than one READDIR batch.
        big_dirs = [i for i in m.client.inodes._inodes.values()
                    if i.is_dir and len(i.entries) > 64]
        if not big_dirs:
            pytest.skip("tree has no large directory at this scale")
        directory = big_dirs[0]
        handle = m.client.vfs.open_inode(directory)
        collected = []

        def body(proc):
            while True:
                entries = yield from m.client.vfs.readdir(proc, handle)
                if not entries:
                    return None
                collected.extend(entries)

        p = m.client.kernel.spawn(body, "ls")
        m.client.run([p])
        assert len(collected) == len(directory.entries)
        assert [e.name for e in collected] == \
            [e.name for e in directory.entries]

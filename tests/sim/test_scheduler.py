"""Tests for the simulated kernel's scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import seconds
from repro.sim.process import (CpuBurst, ProcessState, Sleep, Spawn,
                               WaitCondition, YieldCpu, Condition)
from repro.sim.scheduler import Kernel


def make_kernel(**kwargs):
    kwargs.setdefault("tsc_skew_seconds", 0.0)
    return Kernel(**kwargs)


class TestBasicExecution:
    def test_single_burst_advances_clock(self):
        k = make_kernel()

        def body(proc):
            yield CpuBurst(1000)
            return "done"

        proc = k.spawn(body, "p")
        k.run_until_done([proc])
        assert proc.exit_value == "done"
        assert proc.cpu_time == pytest.approx(1000)
        assert k.now >= 1000

    def test_spawn_returns_before_child_runs(self):
        k = make_kernel()
        ran = []

        def body(proc):
            ran.append(proc.pid)
            return None
            yield

        proc = k.spawn(body, "child")
        assert ran == []  # not started yet
        k.run_until_done([proc])
        assert ran == [proc.pid]

    def test_sleep_accumulates_wait_time(self):
        k = make_kernel()

        def body(proc):
            yield Sleep(5000)
            return None

        proc = k.spawn(body, "sleeper")
        k.run_until_done([proc])
        assert proc.wait_time == pytest.approx(5000)
        assert proc.cpu_time == 0

    def test_zero_cycle_burst_is_noop(self):
        k = make_kernel()

        def body(proc):
            yield CpuBurst(0)
            yield CpuBurst(10)
            return None

        proc = k.spawn(body, "p")
        k.run_until_done([proc])
        assert proc.cpu_time == pytest.approx(10)

    def test_unknown_effect_raises(self):
        k = make_kernel()

        def body(proc):
            yield object()

        k.spawn(body, "bad")
        with pytest.raises(TypeError):
            k.run(max_events=100)


class TestMultiProcessing:
    def test_two_cpus_run_in_parallel(self):
        k = make_kernel(num_cpus=2)

        def body(proc):
            yield CpuBurst(1000)

        procs = [k.spawn(body, f"p{i}") for i in range(2)]
        k.run_until_done(procs)
        # Parallel: wall clock ~1000, not ~2000.
        assert k.now < 1500

    def test_one_cpu_serializes(self):
        k = make_kernel(num_cpus=1, context_switch_cost=0.0)

        def body(proc):
            yield CpuBurst(1000)

        procs = [k.spawn(body, f"p{i}") for i in range(2)]
        k.run_until_done(procs)
        assert k.now >= 2000

    def test_at_most_one_process_per_cpu(self):
        k = make_kernel(num_cpus=2)

        def body(proc):
            for _ in range(20):
                yield CpuBurst(100)
                yield YieldCpu()

        procs = [k.spawn(body, f"p{i}") for i in range(5)]
        # Invariant check after every event.
        while any(not p.done for p in procs):
            if not k.engine.step():
                break
            running = [p for p in procs
                       if p.state == ProcessState.RUNNING]
            assert len(running) <= 2
            cpus = [p.cpu for p in running]
            assert len(set(cpus)) == len(cpus)

    def test_context_switch_cost_charged(self):
        k = make_kernel(num_cpus=1,
                        context_switch_cost=seconds(5.5e-6))

        def body(proc):
            for _ in range(3):
                yield CpuBurst(100)
                yield YieldCpu()

        procs = [k.spawn(body, f"p{i}") for i in range(2)]
        k.run_until_done(procs)
        assert k.context_switches > 0
        assert k.now > 600  # more than pure CPU time


class TestQuantumAndPreemption:
    def test_long_user_burst_preempted_at_quantum(self):
        k = make_kernel(num_cpus=1, quantum=1000,
                        context_switch_cost=0.0)

        def hog(proc):
            yield CpuBurst(5000)

        a = k.spawn(hog, "a")
        b = k.spawn(hog, "b")
        k.run_until_done([a, b])
        # Round robin: both preempted multiple times.
        assert a.preemptions >= 3
        assert b.preemptions >= 3

    def test_quantum_not_refreshed_midburst_without_contention(self):
        k = make_kernel(num_cpus=1, quantum=1000)

        def solo(proc):
            yield CpuBurst(10_000)

        proc = k.spawn(solo, "solo")
        k.run_until_done([proc])
        assert proc.preemptions == 0

    def test_kernel_burst_not_preempted_on_nonpreemptive_kernel(self):
        k = make_kernel(num_cpus=1, quantum=1000,
                        kernel_preemption=False,
                        context_switch_cost=0.0)
        trace = []

        def in_kernel(proc):
            proc.in_kernel += 1
            yield CpuBurst(5000)  # way past the quantum
            trace.append(("kernel_done", k.now))
            proc.in_kernel -= 1
            yield CpuBurst(10)

        def other(proc):
            yield CpuBurst(10)
            trace.append(("other_done", k.now))

        a = k.spawn(in_kernel, "a")
        b = k.spawn(other, "b")
        k.run_until_done([a, b])
        # The kernel burst finished before 'other' ever ran.
        assert trace[0][0] == "kernel_done"

    def test_kernel_burst_preempted_with_kernel_preemption(self):
        k = make_kernel(num_cpus=1, quantum=1000,
                        kernel_preemption=True,
                        context_switch_cost=0.0)
        trace = []

        def in_kernel(proc):
            proc.in_kernel += 1
            yield CpuBurst(5000)
            trace.append(("kernel_done", k.now))
            proc.in_kernel -= 1

        def other(proc):
            yield CpuBurst(10)
            trace.append(("other_done", k.now))

        a = k.spawn(in_kernel, "a")
        b = k.spawn(other, "b")
        k.run_until_done([a, b])
        assert trace[0][0] == "other_done"

    def test_deferred_preemption_happens_at_user_boundary(self):
        k = make_kernel(num_cpus=1, quantum=100,
                        kernel_preemption=False,
                        context_switch_cost=0.0)

        def syscall_loop(proc):
            for _ in range(10):
                proc.in_kernel += 1
                yield CpuBurst(50)
                proc.in_kernel -= 1
                yield CpuBurst(50)  # user mode

        a = k.spawn(syscall_loop, "a")
        b = k.spawn(syscall_loop, "b")
        k.run_until_done([a, b])
        assert a.preemptions > 0
        assert b.preemptions > 0


class TestConditionsAndJoin:
    def test_condition_wakes_waiter_with_value(self):
        k = make_kernel()
        cond = Condition("test")
        got = []

        def waiter(proc):
            value = yield WaitCondition(cond)
            got.append(value)

        def firer(proc):
            yield CpuBurst(100)
            k.fire_condition(cond, "payload")

        w = k.spawn(waiter, "w")
        f = k.spawn(firer, "f")
        k.run_until_done([w, f])
        assert got == ["payload"]
        assert w.wait_time > 0

    def test_wake_all_vs_wake_one(self):
        k = make_kernel(num_cpus=2)
        cond = Condition("test")
        woken = []

        def waiter(proc):
            yield WaitCondition(cond)
            woken.append(proc.name)

        ws = [k.spawn(waiter, f"w{i}") for i in range(3)]
        k.run(max_events=50)
        assert k.fire_condition(cond, wake_all=False) == 1
        assert k.fire_condition(cond, wake_all=True) == 2
        k.run_until_done(ws)
        assert len(woken) == 3

    def test_join_returns_exit_value(self):
        k = make_kernel(num_cpus=2)

        def child(proc):
            yield CpuBurst(500)
            return 42

        def parent(proc):
            c = yield Spawn(child, "child")
            result = yield from k.join(c)
            return result

        p = k.spawn(parent, "parent")
        k.run_until_done([p])
        assert p.exit_value == 42

    def test_join_on_done_process(self):
        k = make_kernel()

        def child(proc):
            return 7
            yield

        c = k.spawn(child, "c")
        k.run_until_done([c])

        def parent(proc):
            result = yield from k.join(c)
            return result

        p = k.spawn(parent, "p")
        k.run_until_done([p])
        assert p.exit_value == 7


class TestWakeupPreemption:
    def test_waker_displaces_user_hog(self):
        k = make_kernel(num_cpus=1, context_switch_cost=0.0)
        timeline = []

        def sleeper(proc):
            yield Sleep(1000)
            timeline.append(("woke", k.now))

        def hog(proc):
            yield CpuBurst(1_000_000)
            timeline.append(("hog_done", k.now))

        s = k.spawn(sleeper, "sleeper")
        h = k.spawn(hog, "hog")
        k.run_until_done([s, h])
        assert timeline[0][0] == "woke"
        assert timeline[0][1] < 100_000
        assert h.preemptions >= 1

    def test_kernel_hog_not_displaced(self):
        k = make_kernel(num_cpus=1, kernel_preemption=False,
                        context_switch_cost=0.0)
        timeline = []

        def sleeper(proc):
            yield Sleep(1000)
            timeline.append(("woke", k.now))

        def kernel_hog(proc):
            proc.in_kernel += 1
            yield CpuBurst(1_000_000)
            timeline.append(("hog_done", k.now))
            proc.in_kernel -= 1

        s = k.spawn(sleeper, "s")
        h = k.spawn(kernel_hog, "h")
        k.run_until_done([s, h])
        assert timeline[0][0] == "hog_done"


class TestShutdownAndErrors:
    def test_deadlock_detected(self):
        k = make_kernel()
        cond = Condition("never")

        def stuck(proc):
            yield WaitCondition(cond)

        p = k.spawn(stuck, "stuck")
        with pytest.raises(RuntimeError, match="deadlock"):
            k.run_until_done([p])

    def test_shutdown_closes_generators(self):
        k = make_kernel()

        def endless(proc):
            while True:
                yield CpuBurst(100)

        p = k.spawn(endless, "endless")
        k.run(until=10_000)
        k.shutdown()
        assert p.done

    def test_accounting_sys_vs_user(self):
        k = make_kernel()

        def body(proc):
            yield CpuBurst(100)  # user
            proc.in_kernel += 1
            yield CpuBurst(300)  # system
            proc.in_kernel -= 1

        p = k.spawn(body, "p")
        k.run_until_done([p])
        assert p.user_time == pytest.approx(100)
        assert p.sys_time == pytest.approx(300)


class TestSchedulerProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=12),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_total_cpu_time_conserved(self, bursts, cpus):
        k = make_kernel(num_cpus=cpus, context_switch_cost=0.0)

        def body(proc, cycles):
            yield CpuBurst(cycles)

        procs = [k.spawn(lambda p, c=c: body(p, c), f"p{i}")
                 for i, c in enumerate(bursts)]
        k.run_until_done(procs)
        total = sum(p.cpu_time for p in procs)
        assert total == pytest.approx(sum(bursts), rel=1e-9)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_all_processes_complete(self, n):
        k = make_kernel(num_cpus=1, quantum=500)

        def body(proc):
            for _ in range(3):
                yield CpuBurst(700)
                yield YieldCpu()

        procs = [k.spawn(body, f"p{i}") for i in range(n)]
        k.run_until_done(procs)
        assert all(p.done for p in procs)

"""Tests for timer interrupts and periodic daemons."""

import pytest

from repro.sim.engine import seconds
from repro.sim.interrupts import PeriodicDaemon, TimerInterrupt
from repro.sim.process import CpuBurst, Sleep
from repro.sim.scheduler import Kernel


def make_kernel(cpus=1):
    return Kernel(num_cpus=cpus, tsc_skew_seconds=0.0)


class TestTimerInterrupt:
    def test_fires_periodically(self):
        k = make_kernel()
        timer = TimerInterrupt(k, period=10_000, cost=0)
        timer.start()
        k.run(until=100_000)
        assert timer.fired == pytest.approx(10, abs=1)

    def test_delays_running_request(self):
        k = make_kernel()
        timer = TimerInterrupt(k, period=10_000, cost=1_000,
                               jitter_sigma=0.0)

        def body(proc):
            yield CpuBurst(100_000)

        p = k.spawn(body, "p")
        timer.start()
        k.run_until_done([p])
        # 100k cycles of work hit by ~10 interrupts of 1k each.
        assert k.now == pytest.approx(110_000, rel=0.1)
        assert timer.delivered >= 8
        # The process's own CPU accounting excludes interrupt time.
        assert p.cpu_time == pytest.approx(100_000)

    def test_idle_cpu_not_delayed(self):
        k = make_kernel()
        timer = TimerInterrupt(k, period=10_000, cost=1_000)
        timer.start()
        k.run(until=100_000)
        assert timer.delivered == 0

    def test_stop(self):
        k = make_kernel()
        timer = TimerInterrupt(k, period=10_000, cost=0)
        timer.start()
        k.run(until=25_000)
        timer.stop()
        fired = timer.fired
        k.run(until=100_000)
        assert timer.fired == fired

    def test_staggered_across_cpus(self):
        k = make_kernel(cpus=2)
        timer = TimerInterrupt(k, period=30_000, cost=0)
        timer.start()
        k.run(until=29_999)
        # Both CPUs ticked once, at different offsets.
        assert timer.fired == 2

    def test_validation(self):
        k = make_kernel()
        with pytest.raises(ValueError):
            TimerInterrupt(k, period=0)
        with pytest.raises(ValueError):
            TimerInterrupt(k, period=100, cost=-1)


class TestPeriodicDaemon:
    def test_wakes_on_period(self):
        k = make_kernel(cpus=2)
        work = []

        def body(proc):
            work.append(k.now)
            yield CpuBurst(100)

        daemon = PeriodicDaemon(k, "d", period=50_000, body_factory=body)
        daemon.start()
        k.run(until=275_000)
        # Wakeups at 50k, ~100k, ~150k, ~200k, ~250k.
        assert daemon.wakeups == 5

    def test_initial_delay_override(self):
        k = make_kernel()
        work = []

        def body(proc):
            work.append(k.now)
            yield CpuBurst(1)

        daemon = PeriodicDaemon(k, "d", period=100_000,
                                body_factory=body, initial_delay=10)
        daemon.start()
        k.run(until=1000)
        assert len(work) == 1

    def test_stop_ends_daemon(self):
        k = make_kernel()

        def body(proc):
            yield CpuBurst(1)

        daemon = PeriodicDaemon(k, "d", period=10_000, body_factory=body)
        proc = daemon.start()
        k.run(until=15_000)
        daemon.stop()
        k.run(until=50_000)
        assert proc.done

    def test_start_idempotent(self):
        k = make_kernel()

        def body(proc):
            yield CpuBurst(1)

        daemon = PeriodicDaemon(k, "d", period=1000, body_factory=body)
        p1 = daemon.start()
        p2 = daemon.start()
        assert p1 is p2

    def test_validation(self):
        k = make_kernel()
        with pytest.raises(ValueError):
            PeriodicDaemon(k, "d", period=0, body_factory=lambda p: None)

"""Tests for the syscall boundary and its instrumentation variants."""

import pytest

from repro.core.profiler import Profiler
from repro.sim.process import CpuBurst
from repro.sim.scheduler import Kernel
from repro.sim.syscalls import PROFILER_HOOK_COST, SyscallLayer


def make_kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


def make_layer(kernel, **kwargs):
    profiler = Profiler(name="user", clock=lambda: kernel.engine.now)
    return SyscallLayer(kernel, profiler=profiler, **kwargs), profiler


class TestInvoke:
    def test_records_request_latency(self):
        k = make_kernel()
        layer, profiler = make_layer(k)

        def body():
            yield CpuBurst(10_000)
            return "result"

        def proc_body(proc):
            result = yield from layer.invoke(proc, "read", body())
            return result

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        assert p.exit_value == "result"
        prof = profiler.profile_set()["read"]
        assert prof.total_ops == 1
        # Latency covers the body (10k) but not the syscall exit path.
        assert 10_000 <= prof.total_latency < 20_000

    def test_in_kernel_depth_managed(self):
        k = make_kernel()
        layer, _ = make_layer(k)
        depths = []

        def body(proc):
            depths.append(proc.in_kernel)
            yield CpuBurst(10)
            return None

        def proc_body(proc):
            depths.append(proc.in_kernel)
            yield from layer.invoke(proc, "op", body(proc))
            depths.append(proc.in_kernel)

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        assert depths == [0, 1, 0]

    def test_in_kernel_restored_on_exception(self):
        k = make_kernel()
        layer, _ = make_layer(k)

        def body():
            yield CpuBurst(10)
            raise ValueError("boom")

        def proc_body(proc):
            try:
                yield from layer.invoke(proc, "op", body())
            except ValueError:
                pass
            return proc.in_kernel

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        assert p.exit_value == 0

    def test_probe_burns_requested_cycles(self):
        k = make_kernel()
        layer, profiler = make_layer(k)

        def proc_body(proc):
            yield from layer.probe(proc, "null", 40)

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        assert profiler.profile_set()["null"].total_ops == 1

    def test_calls_counted(self):
        k = make_kernel()
        layer, _ = make_layer(k)

        def proc_body(proc):
            for _ in range(5):
                yield from layer.probe(proc, "x", 10)

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        assert layer.calls == 5


class TestInstrumentationVariants:
    def run_variant(self, variant, requests=200):
        k = make_kernel()
        layer, profiler = make_layer(k, instrumentation=variant)

        def proc_body(proc):
            for _ in range(requests):
                yield from layer.probe(proc, "null", 40)

        p = k.spawn(proc_body, "p")
        k.run_until_done([p])
        return p, profiler

    def test_variant_costs_ordered(self):
        # off < empty < tsc_only < full in total CPU time (§5.2).
        times = {}
        for variant in SyscallLayer.VARIANTS:
            p, _ = self.run_variant(variant)
            times[variant] = p.sys_time
        assert times["off"] < times["empty"] < times["tsc_only"] \
            < times["full"]

    def test_only_full_records(self):
        for variant in ("off", "empty", "tsc_only"):
            _, profiler = self.run_variant(variant, requests=10)
            assert profiler.profile_set().total_ops() == 0
        _, profiler = self.run_variant("full", requests=10)
        assert profiler.profile_set().total_ops() == 10

    def test_unknown_variant_rejected(self):
        k = make_kernel()
        with pytest.raises(ValueError):
            SyscallLayer(k, instrumentation="bogus")

    def test_hook_cost_components_positive(self):
        assert PROFILER_HOOK_COST["call"] > 0
        assert PROFILER_HOOK_COST["tsc_read"] > 0
        assert PROFILER_HOOK_COST["store"] > 0

"""Tests for effect objects and Process bookkeeping."""

import pytest

from repro.sim.process import (Condition, CpuBurst, Process, ProcessState,
                               Sleep, Spawn, WaitCondition, YieldCpu)
from repro.sim.scheduler import Kernel


class TestEffectValidation:
    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            CpuBurst(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1)

    def test_reprs(self):
        assert "CpuBurst" in repr(CpuBurst(100))
        assert "Sleep" in repr(Sleep(5))
        assert "YieldCpu" in repr(YieldCpu())
        assert "Spawn" in repr(Spawn(None, "child"))
        cond = Condition("c")
        assert "c" in repr(cond)
        assert "WaitCondition" in repr(WaitCondition(cond))


class TestProcessBookkeeping:
    def test_default_name(self):
        proc = Process(7, "", None)
        assert proc.name == "proc7"

    def test_repr_shows_state(self):
        proc = Process(1, "worker", None)
        assert "runnable" in repr(proc)
        proc.state = ProcessState.DONE
        assert proc.done

    def test_started_and_finished_timestamps(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)

        def body(proc):
            yield CpuBurst(1000)
            return None

        k.engine.schedule(500, lambda: None)
        k.run(max_events=1)
        p = k.spawn(body, "p")
        assert p.started_at == 500
        k.run_until_done([p])
        assert p.finished_at == pytest.approx(1500)

    def test_voluntary_switch_counted(self):
        k = Kernel(num_cpus=1, context_switch_cost=0.0,
                   tsc_skew_seconds=0.0)

        def body(proc):
            yield CpuBurst(10)
            yield YieldCpu()
            yield CpuBurst(10)

        a = k.spawn(body, "a")
        b = k.spawn(body, "b")
        k.run_until_done([a, b])
        assert a.voluntary_switches == 1
        assert b.voluntary_switches == 1


class TestConditionSemantics:
    def test_fire_empty_condition_is_noop(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        cond = Condition("empty")
        assert k.fire_condition(cond) == 0

    def test_fire_delivers_value_to_each_waiter(self):
        k = Kernel(num_cpus=2, tsc_skew_seconds=0.0)
        cond = Condition("c")
        got = []

        def waiter(proc):
            value = yield WaitCondition(cond)
            got.append(value)

        procs = [k.spawn(waiter, f"w{i}") for i in range(2)]
        k.run(max_events=50)
        k.fire_condition(cond, value="payload", wake_all=True)
        k.run_until_done(procs)
        assert got == ["payload", "payload"]

    def test_wake_one_order_is_fifo(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0,
                   context_switch_cost=0.0)
        cond = Condition("c")
        order = []

        def waiter(proc):
            yield WaitCondition(cond)
            order.append(proc.name)

        procs = [k.spawn(waiter, f"w{i}") for i in range(3)]
        k.run(max_events=100)
        for _ in range(3):
            k.fire_condition(cond, wake_all=False)
            k.run(max_events=100)
        assert order == ["w0", "w1", "w2"]

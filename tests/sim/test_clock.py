"""Tests for per-CPU TSC skew."""

import pytest

from repro.sim.clock import (POWERUP_SKEW_SECONDS, SOFTWARE_SYNC_SECONDS,
                             TscBank)
from repro.sim.engine import CYCLES_PER_SECOND
from repro.sim.rng import SimRandom


class TestTscBank:
    def test_cpu0_is_reference(self):
        bank = TscBank(4, SimRandom(1))
        assert bank.offset(0) == 0.0
        assert bank.read(0, 12345.0) == 12345.0

    def test_offsets_bounded_by_powerup_skew(self):
        bank = TscBank(8, SimRandom(2))
        bound = POWERUP_SKEW_SECONDS * CYCLES_PER_SECOND
        for cpu in range(8):
            assert abs(bank.offset(cpu)) <= bound

    def test_reads_include_offset(self):
        bank = TscBank(2, SimRandom(3))
        t = 1_000_000.0
        assert bank.read(1, t) == t + bank.offset(1)

    def test_synchronize_shrinks_skew(self):
        bank = TscBank(4, SimRandom(4))
        before = bank.max_pairwise_skew()
        bank.synchronize()
        after = bank.max_pairwise_skew()
        bound = 2 * SOFTWARE_SYNC_SECONDS * CYCLES_PER_SECOND
        assert after <= bound
        # Power-up skew (20ns) is smaller than sync residual (130ns) in
        # the paper's numbers, so only assert the documented bound.
        assert after <= max(before, bound)

    def test_single_cpu_no_skew(self):
        bank = TscBank(1)
        assert bank.max_pairwise_skew() == 0.0

    def test_zero_skew_option(self):
        bank = TscBank(4, SimRandom(5), max_skew_seconds=0.0)
        assert bank.max_pairwise_skew() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TscBank(0)
        with pytest.raises(ValueError):
            TscBank(2, max_skew_seconds=-1)

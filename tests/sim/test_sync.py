"""Tests for semaphores, spinlocks, and RW locks."""

import pytest

from repro.sim.process import CpuBurst
from repro.sim.scheduler import Kernel
from repro.sim.sync import RWLock, Semaphore, SpinLock


def make_kernel(cpus=2):
    return Kernel(num_cpus=cpus, tsc_skew_seconds=0.0)


def run_all(kernel, procs):
    kernel.run_until_done(procs)


class TestSemaphore:
    def test_uncontended_acquire_is_fast_path(self):
        k = make_kernel()
        sem = Semaphore(k, "s")
        results = []

        def body(proc):
            contended = yield from sem.acquire(proc)
            results.append(contended)
            yield from sem.release(proc)

        run_all(k, [k.spawn(body, "p")])
        assert results == [False]
        assert sem.contention_rate() == 0.0

    def test_mutual_exclusion(self):
        k = make_kernel(cpus=4)
        sem = Semaphore(k, "s")
        active = []
        max_active = []

        def body(proc):
            yield from sem.acquire(proc)
            active.append(proc.pid)
            max_active.append(len(active))
            yield CpuBurst(1000)
            active.remove(proc.pid)
            yield from sem.release(proc)

        procs = [k.spawn(body, f"p{i}") for i in range(6)]
        run_all(k, procs)
        assert max(max_active) == 1
        assert sem.contentions > 0

    def test_fifo_fairness(self):
        k = make_kernel(cpus=1)
        sem = Semaphore(k, "s")
        order = []

        def body(proc):
            yield from sem.acquire(proc)
            order.append(proc.name)
            yield CpuBurst(500)
            yield from sem.release(proc)

        procs = [k.spawn(body, f"p{i}") for i in range(4)]
        run_all(k, procs)
        assert order == ["p0", "p1", "p2", "p3"]

    def test_counting_semaphore(self):
        k = make_kernel(cpus=4)
        sem = Semaphore(k, "s", initial=2)
        concurrent = []
        active = [0]

        def body(proc):
            yield from sem.acquire(proc)
            active[0] += 1
            concurrent.append(active[0])
            yield CpuBurst(1000)
            active[0] -= 1
            yield from sem.release(proc)

        procs = [k.spawn(body, f"p{i}") for i in range(4)]
        run_all(k, procs)
        assert max(concurrent) == 2

    def test_held_releases_on_exception(self):
        k = make_kernel()
        sem = Semaphore(k, "s")

        def failing_body():
            yield CpuBurst(10)
            raise ValueError("inner")

        def body(proc):
            try:
                yield from sem.held(proc, failing_body())
            except ValueError:
                pass
            # Must be free again:
            contended = yield from sem.acquire(proc)
            yield from sem.release(proc)
            return contended

        p = k.spawn(body, "p")
        run_all(k, [p])
        assert p.exit_value is False

    def test_unfair_semaphore_allows_barging(self):
        k = make_kernel(cpus=1)
        sem = Semaphore(k, "s", fair=False)

        def body(proc, n):
            for _ in range(n):
                yield from sem.acquire(proc)
                yield CpuBurst(100)
                yield from sem.release(proc)
                yield CpuBurst(100)

        procs = [k.spawn(lambda p: body(p, 50), f"p{i}")
                 for i in range(3)]
        run_all(k, procs)
        # All acquisitions completed despite barging.
        assert sem.acquisitions == 150
        assert sem.count == 1

    def test_contention_rate_math(self):
        k = make_kernel()
        sem = Semaphore(k, "s")
        assert sem.contention_rate() == 0.0
        sem.acquisitions = 10
        sem.contentions = 3
        assert sem.contention_rate() == pytest.approx(0.3)


class TestSpinLock:
    def test_spinning_burns_cpu(self):
        k = make_kernel(cpus=2)
        lock = SpinLock(k, "l")

        def body(proc):
            contended = yield from lock.acquire(proc)
            yield CpuBurst(10_000)
            yield from lock.release(proc)
            return contended

        procs = [k.spawn(body, f"p{i}") for i in range(2)]
        run_all(k, procs)
        contended = [p.exit_value for p in procs]
        assert contended.count(True) == 1
        assert lock.total_spin_cycles > 0
        # The spinner's wait shows up as CPU time, not wait time.
        spinner = procs[1] if contended[1] else procs[0]
        assert spinner.cpu_time > 10_000

    def test_release_when_free_raises(self):
        k = make_kernel()
        lock = SpinLock(k, "l")

        def body(proc):
            yield from lock.release(proc)

        k.spawn(body, "p")
        with pytest.raises(RuntimeError):
            k.run(max_events=100)

    def test_mutual_exclusion(self):
        k = make_kernel(cpus=4)
        lock = SpinLock(k, "l")
        active = [0]
        peak = [0]

        def body(proc):
            yield from lock.acquire(proc)
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield CpuBurst(500)
            active[0] -= 1
            yield from lock.release(proc)

        procs = [k.spawn(body, f"p{i}") for i in range(5)]
        run_all(k, procs)
        assert peak[0] == 1


class TestRWLock:
    def test_readers_share(self):
        k = make_kernel(cpus=4)
        rw = RWLock(k, "rw")
        concurrent_readers = []

        def reader(proc):
            yield from rw.acquire_read(proc)
            concurrent_readers.append(rw.readers)
            yield CpuBurst(2000)
            yield from rw.release_read(proc)

        procs = [k.spawn(reader, f"r{i}") for i in range(3)]
        run_all(k, procs)
        assert max(concurrent_readers) > 1

    def test_writer_excludes_readers(self):
        k = make_kernel(cpus=4)
        rw = RWLock(k, "rw")
        observations = []

        def writer(proc):
            yield from rw.acquire_write(proc)
            observations.append(("w", rw.readers))
            yield CpuBurst(5000)
            yield from rw.release_write(proc)

        def reader(proc):
            yield from rw.acquire_read(proc)
            observations.append(("r", rw.writer is None))
            yield CpuBurst(1000)
            yield from rw.release_read(proc)

        procs = [k.spawn(writer, "w")] + \
            [k.spawn(reader, f"r{i}") for i in range(3)]
        run_all(k, procs)
        for kind, value in observations:
            if kind == "w":
                assert value == 0  # no readers while writing
            else:
                assert value      # no writer while reading

    def test_release_read_underflow(self):
        k = make_kernel()
        rw = RWLock(k, "rw")

        def body(proc):
            yield from rw.release_read(proc)

        k.spawn(body, "p")
        with pytest.raises(RuntimeError):
            k.run(max_events=100)

    def test_release_write_by_nonholder(self):
        k = make_kernel()
        rw = RWLock(k, "rw")

        def body(proc):
            yield from rw.release_write(proc)

        k.spawn(body, "p")
        with pytest.raises(RuntimeError):
            k.run(max_events=100)

    def test_write_held_helper(self):
        k = make_kernel()
        rw = RWLock(k, "rw")

        def inner():
            yield CpuBurst(10)
            return "x"

        def body(proc):
            result = yield from rw.write_held(proc, inner())
            return result

        p = k.spawn(body, "p")
        run_all(k, [p])
        assert p.exit_value == "x"
        assert rw.writer is None

"""Tests for the deterministic random source."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import SimRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SimRandom(42)
        b = SimRandom(42)
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_fork_is_independent_of_draw_order(self):
        a = SimRandom(42)
        a.random()  # perturb parent state
        b = SimRandom(42)
        assert a.fork("disk").random() == b.fork("disk").random()

    def test_fork_salts_differ(self):
        root = SimRandom(42)
        assert root.fork("a").random() != root.fork("b").random()


class TestDraws:
    def test_chance_bounds(self):
        rng = SimRandom(1)
        with pytest.raises(ValueError):
            rng.chance(1.5)
        assert rng.chance(1.0) is True
        assert rng.chance(0.0) is False

    def test_jitter_mean_approximately_preserved(self):
        rng = SimRandom(7)
        draws = [rng.jitter(1000, sigma=0.15) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(1000, rel=0.05)

    def test_jitter_zero_sigma_exact(self):
        rng = SimRandom(7)
        assert rng.jitter(500, sigma=0) == 500

    def test_jitter_validation(self):
        rng = SimRandom(1)
        with pytest.raises(ValueError):
            rng.jitter(0)
        with pytest.raises(ValueError):
            rng.jitter(100, sigma=-1)

    def test_exponential_positive(self):
        rng = SimRandom(2)
        for _ in range(100):
            assert rng.exponential(100) > 0
        with pytest.raises(ValueError):
            rng.exponential(0)

    def test_pareto_bounded_below(self):
        rng = SimRandom(3)
        for _ in range(100):
            assert rng.pareto_cycles(50) >= 50
        with pytest.raises(ValueError):
            rng.pareto_cycles(0)

    @given(st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=20)
    def test_uniform_within_bounds(self, seed):
        rng = SimRandom(seed)
        value = rng.uniform(10, 20)
        assert 10 <= value <= 20

    def test_sample_and_choice(self):
        rng = SimRandom(4)
        items = list(range(10))
        picked = rng.sample(items, 3)
        assert len(set(picked)) == 3
        assert rng.choice(items) in items

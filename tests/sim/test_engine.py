"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (CYCLES_PER_SECOND, Engine, cycles_to_seconds,
                              seconds)


class TestTimeConversions:
    def test_roundtrip(self):
        assert cycles_to_seconds(seconds(0.5)) == pytest.approx(0.5)

    def test_nominal_frequency(self):
        assert seconds(1.0) == CYCLES_PER_SECOND


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, lambda: order.append("c"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(20, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 30

    def test_ties_run_in_schedule_order(self):
        engine = Engine()
        order = []
        engine.schedule(10, lambda: order.append(1))
        engine.schedule(10, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.now = 100
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_at(50, lambda: None)

    def test_events_scheduled_during_events(self):
        engine = Engine()
        seen = []

        def first():
            seen.append(engine.now)
            engine.schedule(5, lambda: seen.append(engine.now))

        engine.schedule(10, first)
        engine.run()
        assert seen == [10, 15]

    def test_cancellation(self):
        engine = Engine()
        seen = []
        event = engine.schedule(10, lambda: seen.append("no"))
        engine.cancel(event)
        engine.schedule(20, lambda: seen.append("yes"))
        engine.run()
        assert seen == ["yes"]
        # Idempotent.
        engine.cancel(event)

    def test_pending_ignores_cancelled(self):
        engine = Engine()
        e1 = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        engine.cancel(e1)
        assert engine.pending() == 1


class TestRunBounds:
    def test_until_advances_clock_even_if_queue_drains(self):
        engine = Engine()
        engine.schedule(5, lambda: None)
        engine.run(until=100)
        assert engine.now == 100

    def test_until_leaves_future_events(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: seen.append(5))
        engine.schedule(200, lambda: seen.append(200))
        engine.run(until=100)
        assert seen == [5]
        assert engine.pending() == 1

    def test_max_events(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(i + 1, lambda i=i: seen.append(i))
        executed = engine.run(max_events=2)
        assert executed == 2
        assert seen == [0, 1]

    def test_stop_predicate_halts_immediately(self):
        engine = Engine()
        seen = []
        engine.schedule(1, lambda: seen.append(1))
        engine.schedule(2, lambda: seen.append(2))
        engine.schedule(3, lambda: seen.append(3))
        engine.run(stop=lambda: len(seen) >= 2)
        assert seen == [1, 2]
        assert engine.now == 2

    def test_step_returns_false_on_empty(self):
        assert Engine().step() is False

    def test_events_processed_counter(self):
        engine = Engine()
        engine.schedule(1, lambda: None)
        engine.schedule(2, lambda: None)
        engine.run()
        assert engine.events_processed == 2

"""Tests for the StateProfile container and its binary codec.

The codec is canonical (sorted attributes, sorted cells) so equal
profiles always encode to identical bytes — the property behind the
pinned state digests and the byte-identity warehouse round trips.
"""

import struct
import zlib

import pytest

from repro.sampling import StateProfile

MAGIC = b"OSPROFS1"


def sample_profile(name="t", interval=100.0, intervals=3):
    sprof = StateProfile(name=name, interval=interval)
    sprof.intervals = intervals
    sprof.add("blocked", "filesystem", "llseek", "sem:i_sem:3", 40)
    sprof.add("blocked", "filesystem", "read", "io:read", 12)
    sprof.add("running", "user", "-", "-", 7)
    sprof.add("runnable", "filesystem", "read", "-", 3)
    return sprof


def rechecksum(payload: bytes) -> bytes:
    """Rebuild a valid frame around a (possibly mutated) payload."""
    return MAGIC + payload + struct.pack(
        "<I", zlib.crc32(payload) & 0xFFFFFFFF)


class TestContainer:
    def test_add_accumulates_per_cell(self):
        sprof = StateProfile()
        sprof.add("blocked", "fs", "read", "io:read")
        sprof.add("blocked", "fs", "read", "io:read", 4)
        assert sprof.count("blocked", "fs", "read", "io:read") == 5
        assert len(sprof) == 1

    def test_total_and_distribution(self):
        sprof = sample_profile()
        assert sprof.total_samples() == 62
        dist = sprof.distribution()
        assert dist[("blocked", "filesystem", "llseek",
                     "sem:i_sem:3")] == pytest.approx(40 / 62)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_by_count_orders_most_sampled_first(self):
        ranked = sample_profile().by_count()
        counts = [count for _cell, count in ranked]
        assert counts == sorted(counts, reverse=True)
        assert ranked[0][0] == ("blocked", "filesystem", "llseek",
                                "sem:i_sem:3")

    def test_top_limits_rows(self):
        assert len(sample_profile().top(2)) == 2

    def test_wait_sites_only_blocked_cells(self):
        sites = sample_profile().wait_sites()
        assert sites == {"sem:i_sem:3": 40, "io:read": 12}

    def test_merge_adds_counts_and_intervals(self):
        a = sample_profile(intervals=3)
        b = sample_profile(intervals=5)
        a.merge(b)
        assert a.intervals == 8
        assert a.count("running", "user", "-", "-") == 14

    def test_merge_mismatched_interval_zeroes_interval(self):
        a = sample_profile(interval=100.0)
        b = sample_profile(interval=250.0)
        a.merge(b)
        assert a.interval == 0.0

    def test_merged_classmethod_equals_pairwise(self):
        parts = [sample_profile(intervals=i) for i in (1, 2, 3)]
        merged = StateProfile.merged(parts, name="m")
        by_hand = StateProfile(name="m", interval=parts[0].interval)
        for part in parts:
            by_hand.merge(part)
        assert merged == by_hand


class TestCodec:
    def test_round_trip_byte_identity(self):
        sprof = sample_profile()
        data = sprof.to_bytes()
        back = StateProfile.from_bytes(data)
        assert back == sprof
        assert back.to_bytes() == data

    def test_canonical_independent_of_insertion_order(self):
        a = StateProfile(name="c", interval=10.0)
        b = StateProfile(name="c", interval=10.0)
        cells = [("blocked", "fs", "read", "io:read", 2),
                 ("running", "user", "-", "-", 5),
                 ("blocked", "fs", "llseek", "sem:i_sem:3", 9)]
        for cell in cells:
            a.add(*cell)
        for cell in reversed(cells):
            b.add(*cell)
        assert a.to_bytes() == b.to_bytes()

    def test_bad_magic_rejected(self):
        data = bytearray(sample_profile().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ValueError):
            StateProfile.from_bytes(bytes(data))

    def test_crc_flip_detected(self):
        data = bytearray(sample_profile().to_bytes())
        data[-1] ^= 0x01
        with pytest.raises(ValueError):
            StateProfile.from_bytes(bytes(data))

    def test_payload_flip_detected(self):
        data = bytearray(sample_profile().to_bytes())
        data[len(MAGIC) + 3] ^= 0x10
        with pytest.raises(ValueError):
            StateProfile.from_bytes(bytes(data))

    @pytest.mark.parametrize("cut", (1, 4, 9))
    def test_truncation_detected(self, cut):
        data = sample_profile().to_bytes()
        with pytest.raises(ValueError):
            StateProfile.from_bytes(data[:-cut])

    def test_trailing_bytes_rejected_even_with_valid_crc(self):
        # Appending garbage *after* the CRC trailer must fail too: the
        # decoder consumes the whole buffer or raises.
        data = sample_profile().to_bytes()
        with pytest.raises(ValueError):
            StateProfile.from_bytes(data + b"\x00")

    def test_duplicate_cell_rejected(self):
        # Hand-build a payload whose cell table lists the same key
        # twice; a lenient decoder would silently sum or drop one.
        out = []

        def pack_str(s):
            raw = s.encode("utf-8")
            out.append(struct.pack("<H", len(raw)) + raw)

        pack_str("dup")
        out.append(struct.pack("<dQ", 10.0, 1))
        out.append(struct.pack("<H", 0))          # no attributes
        out.append(struct.pack("<I", 2))          # two identical cells
        for _ in range(2):
            for field in ("blocked", "fs", "read", "io:read"):
                pack_str(field)
            out.append(struct.pack("<Q", 1))
        with pytest.raises(ValueError, match="duplicate"):
            StateProfile.from_bytes(rechecksum(b"".join(out)))

    def test_non_bytes_rejected(self):
        with pytest.raises(ValueError):
            StateProfile.from_bytes("not bytes")

    def test_is_state_payload_discriminates(self):
        from repro.core.profileset import ProfileSet
        assert StateProfile.is_state_payload(sample_profile().to_bytes())
        assert not StateProfile.is_state_payload(ProfileSet().to_bytes())

    def test_save_load_path(self, tmp_path):
        sprof = sample_profile()
        path = tmp_path / "state.osps"
        sprof.save(str(path))
        assert StateProfile.load_path(str(path)) == sprof

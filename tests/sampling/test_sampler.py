"""Tests for the wait-state sampler: determinism, provenance, isolation.

The two load-bearing properties:

* determinism — same seed, same interval, same StateProfile bytes, so
  sampled captures can be pinned by digest exactly like measured ones;
* isolation — arming the sampler never perturbs the simulation, so the
  measured profiles of a sampled run are byte-identical to an
  unsampled run under the same seed.
"""

import pytest

from repro.sampling import WaitStateSampler, canonical_wait_site
from repro.system import System
from repro.workloads.runner import (collect_layer_profiles,
                                    collect_sampled_run)


def seconds(s):
    """Seconds of simulated time in cycles (1.7 GHz, as the paper)."""
    return s * 1.7e9

INTERVAL = seconds(0.0005)


def sampled_randomread(processes=2, seed=2006, iterations=200,
                       interval=INTERVAL):
    return collect_sampled_run(
        "randomread", state_sample_interval=interval, seed=seed,
        processes=processes, iterations=iterations)


@pytest.fixture(scope="module")
def two_proc():
    return sampled_randomread(processes=2)


class TestCanonicalWaitSite:
    @pytest.mark.parametrize("raw,canon", [
        ("io:w1893", "io:write"),
        ("io:r20724", "io:read"),
        ("page:44", "page"),
        ("nfs:rpc-7", "nfs"),
        ("smb:oplock", "smb"),
        ("exit:519", "exit"),
    ])
    def test_per_request_families_collapse(self, raw, canon):
        assert canonical_wait_site(raw) == canon

    @pytest.mark.parametrize("site", [
        "sem:i_sem:3",      # the §6.1 signature stays per-inode
        "rw:super:read",
        "rw:super:write",
        "unknown",
        "-",
    ])
    def test_named_resources_pass_through(self, site):
        assert canonical_wait_site(site) == site

    def test_sampled_profile_only_contains_canonical_sites(self, two_proc):
        _layers, sprof, _metrics = two_proc
        for (_state, _layer, _op, site), _count in sprof:
            assert canonical_wait_site(site) == site


class TestDeterminism:
    def test_same_seed_same_state_bytes(self, two_proc):
        _layers, first, _m = two_proc
        _layers2, second, _m2 = sampled_randomread(processes=2)
        assert first.to_bytes() == second.to_bytes()

    def test_different_seed_diverges(self, two_proc):
        _layers, first, _m = two_proc
        _layers2, other, _m2 = sampled_randomread(processes=2, seed=7)
        assert first.to_bytes() != other.to_bytes()

    def test_measured_profiles_unperturbed_by_sampler(self, two_proc):
        sampled_layers, _sprof, _m = two_proc
        plain = collect_layer_profiles("randomread", seed=2006,
                                       processes=2, iterations=200)
        for layer in ("user", "fs", "driver"):
            assert sampled_layers[layer].to_bytes() == \
                plain[layer].to_bytes(), (
                f"{layer} profile moved when the sampler was armed")


class TestSection61Signature:
    def test_two_process_blocked_samples_dominated_by_i_sem(self,
                                                            two_proc):
        _layers, sprof, _m = two_proc
        sites = sprof.wait_sites()
        i_sem = sum(count for site, count in sites.items()
                    if site.startswith("sem:i_sem:"))
        # At any sampled instant one process holds i_sem across its
        # direct IO while the other waits on it, so blocked time splits
        # roughly evenly between the disk and the semaphore.
        assert i_sem >= 0.35 * sum(sites.values())
        # The §6.1 signature: llseek itself shows up blocked on the
        # inode semaphore (it has no IO of its own to wait for).
        llseek_on_sem = sum(
            count for (state, _layer, op, site), count in sprof
            if state == "blocked" and op == "llseek"
            and site.startswith("sem:i_sem:"))
        assert llseek_on_sem > 0

    def test_single_process_never_waits_on_i_sem(self):
        _layers, sprof, _m = sampled_randomread(processes=1)
        assert not any(site.startswith("sem:i_sem:")
                       for site in sprof.wait_sites())


class TestSamplerLifecycle:
    def build(self, interval=INTERVAL):
        return System.build(fs_type="ext2", seed=2006, with_timer=False,
                            state_sample_interval=interval)

    def test_armed_system_exposes_sampler(self):
        system = self.build()
        assert isinstance(system.state_sampler, WaitStateSampler)
        assert system.state_sampler.running
        assert system.state_sampler.interval == INTERVAL

    def test_unarmed_system_has_no_sampler(self):
        system = System.build(fs_type="ext2", seed=2006,
                              with_timer=False)
        assert system.state_sampler is None
        assert system.state_profile() is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            self.build(interval=0.0)
        with pytest.raises(ValueError):
            self.build(interval=-1.0)

    def test_stop_is_idempotent_start_rearms(self):
        sampler = self.build().state_sampler
        sampler.stop()
        sampler.stop()
        assert not sampler.running
        sampler.start()
        assert sampler.running

    def test_double_start_rejected(self):
        sampler = self.build().state_sampler
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_stopped_sampler_accumulates_nothing(self):
        from repro.workloads.runner import run_named_workload
        system = self.build()
        system.state_sampler.stop()
        run_named_workload(system, "randomread", seed=2006,
                           processes=2, iterations=100)
        assert system.state_profile().total_samples() == 0

    def test_reset_clears_profile_but_counters_keep_running(self):
        from repro.workloads.runner import run_named_workload
        system = self.build()
        run_named_workload(system, "randomread", seed=2006,
                           processes=2, iterations=100)
        sampler = system.state_sampler
        before = sampler.metrics()
        assert before["osprof_samples_total"] > 0
        sampler.reset()
        assert sampler.profile().total_samples() == 0
        # Health counters are lifetime totals, not per-window.
        assert sampler.metrics() == before

    def test_profile_returns_a_snapshot_copy(self):
        sampler = self.build().state_sampler
        snap = sampler.profile()
        snap.add("blocked", "fs", "read", "io:read")
        assert sampler.profile().total_samples() == 0


class TestMetrics:
    def test_counters_match_profile(self, two_proc):
        _layers, sprof, metrics = two_proc
        assert metrics["osprof_samples_total"] == sprof.total_samples()
        assert metrics["osprof_sample_intervals_total"] == sprof.intervals
        assert metrics["osprof_sampler_overhead_ns_total"] >= 0
        assert sprof.total_samples() > 0

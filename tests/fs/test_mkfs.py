"""Tests for block allocation and tree building."""

import pytest

from repro.disk.geometry import BLOCK_SIZE, DiskGeometry
from repro.fs.mkfs import BlockAllocator, TreeBuilder
from repro.fs.namei import PathWalker
from repro.sim.rng import SimRandom
from repro.sim.scheduler import Kernel
from repro.vfs.inode import InodeTable


@pytest.fixture
def kernel():
    return Kernel(num_cpus=1, tsc_skew_seconds=0.0)


@pytest.fixture
def builder(kernel):
    geo = DiskGeometry(num_blocks=10_000)
    alloc = BlockAllocator(geo, SimRandom(1), fragmentation=0.0)
    return TreeBuilder(InodeTable(kernel), alloc)


class TestBlockAllocator:
    def test_sequential_without_fragmentation(self):
        alloc = BlockAllocator(DiskGeometry(num_blocks=100),
                               SimRandom(1), fragmentation=0.0)
        assert alloc.allocate(5) == [0, 1, 2, 3, 4]
        assert alloc.allocate(2) == [5, 6]
        assert alloc.free_space() == 93

    def test_fragmentation_leaves_gaps(self):
        alloc = BlockAllocator(DiskGeometry(num_blocks=100_000),
                               SimRandom(1), fragmentation=0.5)
        blocks = alloc.allocate(200)
        gaps = sum(1 for a, b in zip(blocks, blocks[1:]) if b != a + 1)
        assert gaps > 10

    def test_disk_full(self):
        alloc = BlockAllocator(DiskGeometry(num_blocks=3),
                               fragmentation=0.0)
        alloc.allocate(3)
        with pytest.raises(RuntimeError):
            alloc.allocate(1)

    def test_validation(self):
        geo = DiskGeometry(num_blocks=10)
        with pytest.raises(ValueError):
            BlockAllocator(geo, fragmentation=1.5)
        alloc = BlockAllocator(geo, fragmentation=0.0)
        with pytest.raises(ValueError):
            alloc.allocate(0)


class TestTreeBuilder:
    def test_make_root(self, builder):
        root = builder.make_root()
        assert root.is_dir
        assert root.blocks
        assert builder.dirs_created == 1

    def test_mkdir_links_child(self, builder):
        root = builder.make_root()
        child = builder.mkdir(root, "sub")
        assert root.lookup_entry("sub").ino == child.ino
        assert child.is_dir

    def test_mkfile_sizes_and_blocks(self, builder):
        root = builder.make_root()
        f = builder.mkfile(root, "data", BLOCK_SIZE * 2 + 10)
        assert f.size == BLOCK_SIZE * 2 + 10
        assert len(f.blocks) == 3

    def test_empty_file_has_no_blocks(self, builder):
        root = builder.make_root()
        f = builder.mkfile(root, "empty", 0)
        assert f.blocks == []

    def test_duplicate_names_rejected(self, builder):
        root = builder.make_root()
        builder.mkfile(root, "x", 1)
        with pytest.raises(FileExistsError):
            builder.mkfile(root, "x", 1)
        with pytest.raises(FileExistsError):
            builder.mkdir(root, "x")

    def test_directory_blocks_grow_with_entries(self, builder):
        root = builder.make_root()
        d = builder.mkdir(root, "big")
        for i in range(200):  # > 3 pages of entries
            builder.mkfile(d, f"f{i}", 10)
        assert len(d.blocks) >= d.num_pages()

    def test_mkfile_in_file_rejected(self, builder):
        root = builder.make_root()
        f = builder.mkfile(root, "f", 10)
        with pytest.raises(ValueError):
            builder.mkfile(f, "sub", 10)


class TestPathWalker:
    def test_walk_resolves_nested_path(self, kernel, builder):
        root = builder.make_root()
        sub = builder.mkdir(root, "a")
        leaf = builder.mkfile(sub, "b.txt", 10)
        walker = PathWalker(kernel, builder.inodes, root)

        def body(proc):
            inode = yield from walker.walk(proc, "/a/b.txt")
            return inode

        p = kernel.spawn(body, "w")
        kernel.run_until_done([p])
        assert p.exit_value is leaf

    def test_walk_missing_component(self, kernel, builder):
        root = builder.make_root()
        walker = PathWalker(kernel, builder.inodes, root)

        def body(proc):
            yield from walker.walk(proc, "/ghost")

        kernel.spawn(body, "w")
        with pytest.raises(KeyError):
            kernel.run(max_events=200)

    def test_walk_through_file_rejected(self, kernel, builder):
        root = builder.make_root()
        builder.mkfile(root, "f", 10)
        walker = PathWalker(kernel, builder.inodes, root)

        def body(proc):
            yield from walker.walk(proc, "/f/deeper")

        kernel.spawn(body, "w")
        with pytest.raises(NotADirectoryError):
            kernel.run(max_events=200)

    def test_exists_non_simulated(self, kernel, builder):
        root = builder.make_root()
        sub = builder.mkdir(root, "a")
        builder.mkfile(sub, "b", 1)
        walker = PathWalker(kernel, builder.inodes, root)
        assert walker.exists("/a/b")
        assert not walker.exists("/a/c")
        assert not walker.exists("/a/b/c")

    def test_split(self):
        assert PathWalker.split("/a//b/") == ["a", "b"]
        assert PathWalker.split("") == []

"""Tests for OS-level readahead."""

import pytest

from repro.sim.process import CpuBurst
from repro.system import System

PROCESS_COST = 200_000  # ~120us of user CPU per page: room to overlap


def sequential_reader(system, inode, think=PROCESS_COST):
    def body(proc):
        handle = system.vfs.open_inode(inode)
        while True:
            n = yield from system.syscalls.invoke(
                proc, "read", system.vfs.read(proc, handle, 4096))
            if n == 0:
                return None
            yield CpuBurst(think)

    return body


def run_sequential(readahead, size=2 << 20, think=PROCESS_COST):
    system = System.build(with_timer=False)
    system.fs.readahead = readahead
    inode = system.tree.mkfile(system.root, "big", size)
    p = system.kernel.spawn(sequential_reader(system, inode, think),
                            "seq")
    system.run([p])
    return system


class TestReadahead:
    def test_hides_disk_latency_under_sequential_reads(self):
        with_ra = run_sequential(True)
        without = run_sequential(False)
        slow = lambda s: sum(
            c for b, c in s.fs_profiles()["read"].counts().items()
            if b >= 15)
        assert slow(with_ra) < slow(without) / 20
        assert with_ra.elapsed_seconds() < without.elapsed_seconds()

    def test_window_grows_and_caps(self):
        system = run_sequential(True)
        assert system.fs.readahead_pages > 0
        # Window state lives on the file; a fresh file starts closed.
        inode = system.tree.mkfile(system.root, "other", 4096)
        f = system.vfs.open_inode(inode)
        assert f.ra_window == 0

    def test_random_access_closes_window(self):
        system = System.build(with_timer=False)
        inode = system.tree.mkfile(system.root, "f", 1 << 20)
        f = system.vfs.open_inode(inode)

        def body(proc):
            # Two sequential reads open the window...
            yield from system.vfs.read(proc, f, 4096)
            yield from system.vfs.read(proc, f, 4096)
            opened = f.ra_window
            # ...then a far seek closes it.
            f.pos = 100 * 4096
            yield from system.vfs.read(proc, f, 4096)
            return (opened, f.ra_window)

        p = system.kernel.spawn(body, "p")
        system.run([p])
        opened, closed = p.exit_value
        assert opened > 0
        assert closed == 0

    def test_no_readahead_past_eof(self):
        system = System.build(with_timer=False)
        inode = system.tree.mkfile(system.root, "tiny", 2 * 4096)
        f = system.vfs.open_inode(inode)

        def body(proc):
            while True:
                n = yield from system.vfs.read(proc, f, 4096)
                if n == 0:
                    return None

        p = system.kernel.spawn(body, "p")
        system.run([p])
        # Only the file's own 2 pages were ever requested.
        assert system.disk.reads <= 2

    def test_direct_io_unaffected(self):
        system = System.build(with_timer=False)
        from repro.vfs.file import O_DIRECT

        inode = system.tree.mkfile(system.root, "f", 1 << 20)
        f = system.vfs.open_inode(inode, flags=O_DIRECT)

        def body(proc):
            yield from system.vfs.read(proc, f, 4096)
            yield from system.vfs.read(proc, f, 4096)

        p = system.kernel.spawn(body, "p")
        system.run([p])
        assert system.fs.readahead_pages == 0

    def test_disabled_readahead_never_prefetches(self):
        system = run_sequential(False)
        assert system.fs.readahead_pages == 0

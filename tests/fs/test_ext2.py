"""Tests for the Ext2-like file system."""

import pytest

from repro.disk.geometry import BLOCK_SIZE
from repro.system import System
from repro.vfs.file import O_DIRECT
from repro.vfs.inode import ENTRIES_PER_PAGE


@pytest.fixture
def system():
    return System.build(fs_type="ext2", with_timer=False)


def run_body(system, fn):
    p = system.kernel.spawn(fn, "t")
    system.run([p])
    return p


class TestReaddir:
    def test_batches_then_eof(self, system):
        d = system.tree.mkdir(system.root, "dir")
        for i in range(20):
            system.tree.mkfile(d, f"f{i}", 100)
        f = system.vfs.open_inode(d)
        batches = []

        def body(proc):
            while True:
                entries = yield from system.vfs.readdir(proc, f)
                if not entries:
                    return batches
                batches.append(len(entries))

        p = run_body(system, body)
        assert sum(batches) == 20
        assert max(batches) <= system.fs.readdir_chunk

    def test_eof_call_is_fast(self, system):
        d = system.tree.mkdir(system.root, "dir")
        f = system.vfs.open_inode(d)
        f.pos = 0  # empty dir: first call is already past EOF

        def body(proc):
            entries = yield from system.vfs.readdir(proc, f)
            return entries

        p = run_body(system, body)
        assert p.exit_value == []
        prof = system.fs_profiles()["readdir"]
        lo, hi = prof.histogram.span()
        assert hi <= 8  # past-EOF peak: buckets 6-7ish

    def test_miss_invokes_readpage_once_per_page(self, system):
        d = system.tree.mkdir(system.root, "dir")
        for i in range(ENTRIES_PER_PAGE * 2):
            system.tree.mkfile(d, f"f{i}", 100)
        f = system.vfs.open_inode(d)

        def body(proc):
            while True:
                entries = yield from system.vfs.readdir(proc, f)
                if not entries:
                    return None

        run_body(system, body)
        pset = system.fs_profiles()
        assert pset["readpage"].total_ops == 2  # one per directory page

    def test_cached_calls_cheaper_than_misses(self, system):
        d = system.tree.mkdir(system.root, "dir")
        for i in range(ENTRIES_PER_PAGE):
            system.tree.mkfile(d, f"f{i}", 100)
        f = system.vfs.open_inode(d)

        def body(proc):
            while True:
                entries = yield from system.vfs.readdir(proc, f)
                if not entries:
                    return None

        run_body(system, body)
        prof = system.fs_profiles()["readdir"]
        counts = prof.counts()
        # One miss (waits for disk: bucket >= 15) and several cached
        # calls (buckets < 15).
        slow = sum(c for b, c in counts.items() if b >= 15)
        fast = sum(c for b, c in counts.items() if b < 15)
        assert slow == 1
        assert fast >= 3

    def test_readdir_on_file_rejected(self, system):
        f_inode = system.tree.mkfile(system.root, "f", 100)
        f = system.vfs.open_inode(f_inode)

        def body(proc):
            yield from system.vfs.readdir(proc, f)

        system.kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            system.kernel.run(max_events=500)

    def test_atime_dirtied(self, system):
        d = system.tree.mkdir(system.root, "dir")
        system.tree.mkfile(d, "f", 100)
        f = system.vfs.open_inode(d)

        def body(proc):
            yield from system.vfs.readdir(proc, f)

        run_body(system, body)
        assert d.dirty


class TestRead:
    def test_zero_byte_read_fast_path(self, system):
        inode = system.tree.mkfile(system.root, "f", 0)
        f = system.vfs.open_inode(inode)

        def body(proc):
            n = yield from system.vfs.read(proc, f, 4096)
            return n

        p = run_body(system, body)
        assert p.exit_value == 0
        prof = system.fs_profiles()["read"]
        assert max(prof.counts()) <= 8

    def test_buffered_read_fills_cache(self, system):
        inode = system.tree.mkfile(system.root, "f", BLOCK_SIZE * 2)
        f = system.vfs.open_inode(inode)

        def body(proc):
            total = 0
            while True:
                n = yield from system.vfs.read(proc, f, BLOCK_SIZE)
                if n == 0:
                    return total
                total += n

        p = run_body(system, body)
        assert p.exit_value == BLOCK_SIZE * 2
        assert system.vfs.pagecache.resident_count() == 2
        # Second read of the same data: all cache hits, no new I/O.
        reads_before = system.disk.reads
        f2 = system.vfs.open_inode(inode)

        def body2(proc):
            while True:
                n = yield from system.vfs.read(proc, f2, BLOCK_SIZE)
                if n == 0:
                    return None

        run_body(system, body2)
        assert system.disk.reads == reads_before

    def test_short_read_at_eof(self, system):
        inode = system.tree.mkfile(system.root, "f", 1000)
        f = system.vfs.open_inode(inode)

        def body(proc):
            n = yield from system.vfs.read(proc, f, 4096)
            return n

        p = run_body(system, body)
        assert p.exit_value == 1000

    def test_direct_read_bypasses_page_cache(self, system):
        inode = system.tree.mkfile(system.root, "f", BLOCK_SIZE * 4)
        f = system.vfs.open_inode(inode, flags=O_DIRECT)

        def body(proc):
            yield from system.vfs.read(proc, f, 512)

        run_body(system, body)
        assert system.vfs.pagecache.resident_count() == 0
        assert system.disk.reads == 1

    def test_direct_read_holds_i_sem(self, system):
        inode = system.tree.mkfile(system.root, "f", BLOCK_SIZE * 4)
        f = system.vfs.open_inode(inode, flags=O_DIRECT)

        def body(proc):
            yield from system.vfs.read(proc, f, 512)

        run_body(system, body)
        assert inode.i_sem.acquisitions == 1
        assert inode.i_sem.count == 1

    def test_negative_size_rejected(self, system):
        inode = system.tree.mkfile(system.root, "f", 100)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.read(proc, f, -1)

        system.kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            system.kernel.run(max_events=500)


class TestWriteAndFsync:
    def test_write_dirties_cache_without_io(self, system):
        inode = system.tree.mkfile(system.root, "f", 0)
        f = system.vfs.open_inode(inode)

        def body(proc):
            n = yield from system.vfs.write(proc, f, BLOCK_SIZE * 2)
            return n

        p = run_body(system, body)
        assert p.exit_value == BLOCK_SIZE * 2
        assert inode.size == BLOCK_SIZE * 2
        assert len(system.vfs.pagecache.dirty_pages()) == 2
        assert system.disk.writes == 0

    def test_fsync_writes_back_dirty_pages(self, system):
        inode = system.tree.mkfile(system.root, "f", 0)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.write(proc, f, BLOCK_SIZE * 3)
            flushed = yield from system.vfs.fsync(proc, f)
            return flushed

        p = run_body(system, body)
        assert p.exit_value == 3
        assert system.disk.writes == 3
        assert not system.vfs.pagecache.dirty_pages()
        assert not inode.dirty

    def test_write_allocates_blocks(self, system):
        inode = system.tree.mkfile(system.root, "f", 0)
        f = system.vfs.open_inode(inode)
        assert len(inode.blocks) == 0

        def body(proc):
            yield from system.vfs.write(proc, f, BLOCK_SIZE * 2)

        run_body(system, body)
        assert len(inode.blocks) == 2


class TestNamespace:
    def test_create_and_unlink(self, system):
        d = system.tree.mkdir(system.root, "dir")

        def body(proc):
            inode = yield from system.fs.create(proc, d, "new")
            yield from system.fs.unlink(proc, d, "new")
            return inode

        p = run_body(system, body)
        assert p.exit_value.kind == "file"
        assert d.lookup_entry("new") is None

    def test_create_duplicate_rejected(self, system):
        d = system.tree.mkdir(system.root, "dir")
        system.tree.mkfile(d, "f", 10)

        def body(proc):
            yield from system.fs.create(proc, d, "f")

        system.kernel.spawn(body, "p")
        with pytest.raises(FileExistsError):
            system.kernel.run(max_events=1000)

    def test_unlink_missing_rejected(self, system):
        d = system.tree.mkdir(system.root, "dir")

        def body(proc):
            yield from system.fs.unlink(proc, d, "ghost")

        system.kernel.spawn(body, "p")
        with pytest.raises(FileNotFoundError):
            system.kernel.run(max_events=1000)

"""Tests for the NTFS substrate and the Windows filter driver."""

import pytest

from repro.fs.filterdrv import FilterDriver
from repro.fs.ntfs import Ntfs
from repro.system import System
from repro.vfs.file import O_DIRECT
from repro.workloads import RandomReadConfig, run_random_read


@pytest.fixture
def system():
    return System.build(fs_type="ntfs", with_timer=False)


def run_body(system, fn):
    p = system.kernel.spawn(fn, "t")
    system.run([p])
    return p


class TestLlseekSemantics:
    def test_no_lock_contention_on_ntfs(self):
        # Section 6.1: "We ran the same workload on a Windows NTFS file
        # system and found no lock contention."
        system = System.build(fs_type="ntfs", num_cpus=2,
                              with_timer=False)
        run_random_read(system, RandomReadConfig(processes=2,
                                                 iterations=600))
        llseek = system.fs_profiles()["llseek"]
        # Every llseek is fast: no semaphore waits at all.
        assert all(b < 12 for b in llseek.counts())
        shared = next(i for i in system.inodes._inodes.values()
                      if not i.is_dir)
        assert shared.i_sem.acquisitions == \
            shared.i_sem.contentions == 0 or \
            shared.i_sem.acquisitions > 0  # direct reads still lock

    def test_llseek_does_not_touch_i_sem(self, system):
        inode = system.tree.mkfile(system.root, "f", 8192)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.llseek(proc, f, 4096, 0)

        run_body(system, body)
        assert inode.i_sem.acquisitions == 0
        assert f.pos == 4096

    def test_llseek_validation(self, system):
        inode = system.tree.mkfile(system.root, "f", 100)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.llseek(proc, f, -5, 0)

        system.kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            system.kernel.run(max_events=500)


class TestFastIoDispatch:
    def test_cold_read_is_irp_warm_read_is_fastio(self, system):
        inode = system.tree.mkfile(system.root, "f", 4096)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.read(proc, f, 4096)   # cold: IRP
            f.pos = 0
            yield from system.vfs.read(proc, f, 4096)   # warm: FastIO

        run_body(system, body)
        assert system.fs.irp_requests == 1
        assert system.fs.fastio_requests == 1
        assert system.fs.fastio_fraction() == pytest.approx(0.5)

    def test_fastio_cheaper_than_irp(self, system):
        inode = system.tree.mkfile(system.root, "f", 4096)
        system.vfs.pagecache.install_resident(inode.ino, 0)
        f = system.vfs.open_inode(inode)

        def warm(proc):
            yield from system.vfs.read(proc, f, 4096)

        p_warm = run_body(system, warm)
        warm_cpu = p_warm.cpu_time
        # A trivially-completing read also takes the fast path.
        assert system.fs.fastio_requests >= 1
        assert warm_cpu < 25_000  # no IRP overhead


class TestFilterDriver:
    def test_intercepts_and_classifies(self, system):
        filt = FilterDriver(system.kernel, system.fs)
        inode = system.tree.mkfile(system.root, "f", 8192)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from filt.read(proc, f, 4096)      # cold: IRP
            f.pos = 0
            yield from filt.read(proc, f, 4096)      # warm: FASTIO
            yield from filt.llseek(proc, f, 0, 0)    # FASTIO
            yield from filt.readdir(proc,
                                    system.vfs.open_inode(system.root))

        run_body(system, body)
        pset = filt.profile_set()
        assert pset["IRP_MJ_READ"].total_ops == 1
        assert pset["FASTIO_MJ_READ"].total_ops == 1
        assert pset["FASTIO_MJ_SET_INFORMATION"].total_ops == 1
        assert pset["IRP_MJ_DIRECTORY_CONTROL"].total_ops == 1
        assert 0 < filt.fastio_share() < 1

    def test_fastio_profile_far_left_of_irp(self, system):
        filt = FilterDriver(system.kernel, system.fs)
        inode = system.tree.mkfile(system.root, "f", 4096 * 8)
        f = system.vfs.open_inode(inode)

        def body(proc):
            # Cold pass (IRP + disk), then several warm passes (FastIO).
            while True:
                n = yield from filt.read(proc, f, 4096)
                if n == 0:
                    break
            for _ in range(5):
                f.pos = 0
                while True:
                    n = yield from filt.read(proc, f, 4096)
                    if n == 0:
                        break

        run_body(system, body)
        pset = filt.profile_set()
        irp = pset["IRP_MJ_READ"]
        fastio = pset["FASTIO_MJ_READ"]
        assert fastio.mean_latency() < irp.mean_latency() / 10

    def test_works_on_non_ntfs(self):
        system = System.build(fs_type="ext2", with_timer=False)
        filt = FilterDriver(system.kernel, system.fs)
        inode = system.tree.mkfile(system.root, "f", 4096)
        f = system.vfs.open_inode(inode)

        def body(proc):
            yield from filt.read(proc, f, 4096)

        run_body(system, body)
        # Without NTFS dispatch info, everything is an IRP.
        assert filt.irps_seen == 1

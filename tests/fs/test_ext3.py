"""Tests for the Ext3-like journaled file system."""

import pytest

from repro.disk.geometry import BLOCK_SIZE
from repro.system import System


@pytest.fixture
def ext3():
    return System.build(fs_type="ext3", with_timer=False)


@pytest.fixture
def ext2():
    return System.build(fs_type="ext2", with_timer=False)


def write_and_fsync(system, size=BLOCK_SIZE * 2):
    inode = system.tree.mkfile(system.root, "mail", 0)
    handle = system.vfs.open_inode(inode)

    def body(proc):
        yield from system.vfs.write(proc, handle, size)
        flushed = yield from system.vfs.fsync(proc, handle)
        return flushed

    proc = system.kernel.spawn(body, "w")
    system.run([proc])
    return proc


class TestJournal:
    def test_fsync_commits_a_transaction(self, ext3):
        proc = write_and_fsync(ext3)
        assert proc.exit_value == 2  # data pages flushed
        assert ext3.fs.commits == 1
        # Data blocks + journal blocks hit the disk.
        assert ext3.disk.writes == 2 + len(ext3.fs.journal_area)

    def test_fsync_slower_than_ext2(self, ext2, ext3):
        p2 = write_and_fsync(ext2)
        p3 = write_and_fsync(ext3)
        fsync2 = ext2.fs_profiles()["fsync"]
        fsync3 = ext3.fs_profiles()["fsync"]
        assert fsync3.mean_latency() > fsync2.mean_latency()

    def test_reads_not_serialized_by_commit(self, ext3):
        # The anti-Reiserfs property: a reader concurrent with the
        # journal commit never waits on a shared lock.
        inode = ext3.tree.mkfile(ext3.root, "f", BLOCK_SIZE)
        dirty = ext3.tree.mkfile(ext3.root, "dirty", 0)
        dirty.dirty = True

        def committer(proc):
            yield from ext3.fs.write_super(proc)

        def reader(proc):
            handle = ext3.vfs.open_inode(inode)
            yield from ext3.vfs.read(proc, handle, BLOCK_SIZE)

        c = ext3.kernel.spawn(committer, "commit")
        r = ext3.kernel.spawn(reader, "read")
        ext3.run([c, r])
        assert inode.i_sem.contentions == 0

    def test_write_super_clears_dirty_metadata(self, ext3):
        inode = ext3.tree.mkfile(ext3.root, "f", 0)
        inode.dirty = True

        def body(proc):
            cleaned = yield from ext3.fs.write_super(proc)
            return cleaned

        proc = ext3.kernel.spawn(body, "flush")
        ext3.run([proc])
        assert proc.exit_value == 1
        assert not inode.dirty
        assert ext3.fs.commits == 1

    def test_journal_validation(self, ext3):
        from repro.fs.ext3 import Ext3

        with pytest.raises(ValueError):
            Ext3(ext3.kernel, ext3.driver, ext3.inodes,
                 ext3.allocator, journal_blocks=0)


class TestWebServerWorkload:
    def test_bimodal_read_profile(self):
        from repro.workloads import WebServerConfig, run_webserver

        system = System.build(fs_type="ext2", num_cpus=2,
                              with_timer=False)
        result = run_webserver(system,
                               WebServerConfig(documents=100,
                                               requests=400))
        assert result.requests == 400
        assert result.bytes_served > 0
        counts = system.fs_profiles()["read"].counts()
        cached = sum(c for b, c in counts.items() if b < 15)
        disk = sum(c for b, c in counts.items() if b >= 15)
        assert cached > 0 and disk > 0
        assert cached > disk  # Zipf hot set dominates

    def test_smaller_cache_shifts_mass_to_disk(self):
        from repro.workloads import WebServerConfig, run_webserver

        def disk_share(pages):
            system = System.build(fs_type="ext2", num_cpus=2,
                                  with_timer=False,
                                  pagecache_pages=pages)
            run_webserver(system, WebServerConfig(documents=150,
                                                  requests=400))
            counts = system.fs_profiles()["read"].counts()
            disk = sum(c for b, c in counts.items() if b >= 15)
            return disk / sum(counts.values())

        assert disk_share(64) > disk_share(100_000)

    def test_validation(self):
        from repro.workloads import WebServerConfig, run_webserver

        system = System.build(with_timer=False)
        with pytest.raises(ValueError):
            run_webserver(system, WebServerConfig(workers=0))

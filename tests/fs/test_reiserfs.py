"""Tests for the reiserfs-like journaled FS and bdflush."""

import pytest

from repro.fs.bdflush import make_flush_daemons
from repro.sim.engine import seconds
from repro.system import System


@pytest.fixture
def system():
    return System.build(fs_type="reiserfs", with_timer=False)


class TestJournalCommit:
    def test_write_super_commits_under_lock(self, system):
        # Dirty an inode via a read's atime update first.
        inode = system.tree.mkfile(system.root, "f", 4096)
        f = system.vfs.open_inode(inode)

        def reader(proc):
            yield from system.vfs.read(proc, f, 4096)

        p = system.kernel.spawn(reader, "r")
        system.run([p])
        assert inode.dirty

        def flusher(proc):
            flushed = yield from system.fs.write_super(proc)
            return flushed

        p = system.kernel.spawn(flusher, "flush")
        system.run([p])
        assert p.exit_value == 1
        assert not inode.dirty
        assert system.fs.commits == 1
        assert system.disk.writes == len(system.fs.journal_area)

    def test_reads_stall_during_commit(self, system):
        inode = system.tree.mkfile(system.root, "f", 4096)

        def flusher(proc):
            yield from system.fs.write_super(proc)

        def reader(proc):
            f = system.vfs.open_inode(inode)
            yield from system.vfs.read(proc, f, 4096)

        flush_proc = system.kernel.spawn(flusher, "flush")
        read_proc = system.kernel.spawn(reader, "read")
        system.run([flush_proc, read_proc])
        # The journal lock serialized them: the read contended.
        assert system.fs.journal_lock.contentions >= 1

    def test_journal_blocks_validation(self, system):
        from repro.fs.reiserfs import Reiserfs
        with pytest.raises(ValueError):
            Reiserfs(system.kernel, system.driver, system.inodes,
                     system.allocator, journal_blocks=0)


class TestFlushDaemons:
    def test_metadata_daemon_commits_periodically(self, system):
        inode = system.tree.mkfile(system.root, "f", 4096)
        inode.dirty = True
        meta, data = make_flush_daemons(system.kernel, system.vfs,
                                        metadata_period=seconds(5.0))
        meta.start()
        system.kernel.run(until=seconds(11.0))
        assert meta.wakeups == 2
        assert system.fs.commits == 2
        system.kernel.shutdown()

    def test_data_daemon_writes_dirty_pages(self, system):
        inode = system.tree.mkfile(system.root, "f", 0)
        f = system.vfs.open_inode(inode)

        def writer(proc):
            yield from system.vfs.write(proc, f, 8192)

        p = system.kernel.spawn(writer, "w")
        system.run([p])
        dirty_before = len(system.vfs.pagecache.dirty_pages())
        assert dirty_before == 2
        meta, data = make_flush_daemons(system.kernel, system.vfs,
                                        data_period=seconds(2.0))
        data.start()
        system.kernel.run(until=seconds(4.5))
        assert not system.vfs.pagecache.dirty_pages()
        system.kernel.shutdown()

    def test_write_super_instrumented(self, system):
        system.tree.mkfile(system.root, "f", 4096).dirty = True
        meta, _ = make_flush_daemons(system.kernel, system.vfs,
                                     metadata_period=seconds(5.0))
        meta.start()
        system.kernel.run(until=seconds(6.0))
        assert system.fs_profiles()["write_super"].total_ops == 1
        system.kernel.shutdown()

"""Integration tests: the paper's case studies at test scale.

Each test runs a whole workload through the simulated OS and asserts
the *shape* the corresponding figure shows.  Benchmarks regenerate the
full-size versions; these are the fast regression guards.
"""

import pytest

from repro.analysis.peaks import find_peaks
from repro.analysis.preemption import predict_preemption, quantum_bucket
from repro.analysis.select import ProfileSelector
from repro.core.correlation import PeakRange, ValueCorrelator
from repro.sim.engine import seconds
from repro.system import System
from repro.workloads.grep import run_grep
from repro.workloads.microbench import CloneStress, run_zero_byte_reads
from repro.workloads.randomread import RandomReadConfig, run_random_read
from repro.workloads.sourcetree import build_source_tree


class TestFigure1Clone:
    def test_contention_creates_second_peak(self):
        single = System.build(num_cpus=2, with_timer=False)
        CloneStress(single).run(processes=1, iterations=800)
        single_peaks = find_peaks(single.user_profiles()["clone"],
                                  min_ops=8)

        smp = System.build(num_cpus=2, with_timer=False)
        CloneStress(smp).run(processes=4, iterations=800)
        smp_peaks = find_peaks(smp.user_profiles()["clone"], min_ops=8)

        assert len(single_peaks) == 1
        assert len(smp_peaks) == 2
        # Right peak is the contended path: smaller and slower.
        left, right = smp_peaks
        assert right.apex > left.apex
        assert right.ops < left.ops


class TestFigure3Preemption:
    def run_reads(self, preemption):
        s = System.build(num_cpus=1, kernel_preemption=preemption,
                         quantum=seconds(1e-3), with_timer=False)
        run_zero_byte_reads(s, processes=2, iterations=30_000)
        return s.user_profiles()["read"]

    def test_preemptive_kernel_shows_quantum_peak(self):
        prof = self.run_reads(preemption=True)
        qb = quantum_bucket(seconds(1e-3))
        preempted = sum(c for b, c in prof.counts().items() if b >= qb)
        assert preempted > 0

    def test_nonpreemptive_kernel_does_not(self):
        prof = self.run_reads(preemption=False)
        qb = quantum_bucket(seconds(1e-3))
        preempted = sum(c for b, c in prof.counts().items() if b >= qb)
        assert preempted == 0

    def test_theory_predicts_preempted_count(self):
        prof = self.run_reads(preemption=True)
        pred = predict_preemption(prof, seconds(1e-3))
        # The paper matched within 33%; small samples are noisier, so
        # accept a factor-of-two band around the prediction.
        assert pred.expected > 0
        assert 0.3 * pred.expected <= pred.measured + 1 \
            <= 3.0 * (pred.expected + 1)


class TestFigure6Llseek:
    def run_llseek(self, processes, patched):
        s = System.build(num_cpus=2, patched_llseek=patched,
                         with_timer=False)
        run_random_read(s, RandomReadConfig(processes=processes,
                                            iterations=800))
        return s

    def test_two_process_contention_mirrors_read(self):
        s = self.run_llseek(2, patched=False)
        pset = s.fs_profiles()
        llseek, read = pset["llseek"], pset["read"]
        slow_llseek = {b for b in llseek.counts() if b >= 18}
        read_buckets = {b for b in read.counts() if b >= 18}
        assert slow_llseek
        assert slow_llseek & read_buckets  # overlapping peak locations

    def test_single_process_no_contention(self):
        s = self.run_llseek(1, patched=False)
        llseek = s.fs_profiles()["llseek"]
        assert all(b < 12 for b in llseek.counts())

    def test_contention_rate_near_paper(self):
        s = self.run_llseek(2, patched=False)
        llseek = s.fs_profiles()["llseek"]
        counts = llseek.counts()
        contended = sum(c for b, c in counts.items() if b >= 12)
        rate = contended / llseek.total_ops
        assert 0.10 < rate < 0.45  # paper: ~25%

    def test_patch_removes_contention_and_cuts_latency(self):
        unpatched = self.run_llseek(2, patched=False)
        patched = self.run_llseek(2, patched=True)
        lat_unpatched = unpatched.fs_profiles()["llseek"]
        lat_patched = patched.fs_profiles()["llseek"]
        assert all(b < 12 for b in lat_patched.counts())
        # ~70% reduction of the uncontended path (400 -> 120 cycles).
        uncontended = [b for b in lat_unpatched.counts() if b < 12]
        assert lat_patched.mean_latency() < 200
        # The selector flags llseek as the interesting difference.
        selector = ProfileSelector()
        interesting = selector.interesting(
            unpatched.fs_profiles(), patched.fs_profiles(), limit=3)
        assert "llseek" in interesting


class TestFigure7And8Readdir:
    @pytest.fixture(scope="class")
    def grep_system(self):
        s = System.build(with_timer=False, pagecache_pages=100_000)
        root, stats = build_source_tree(s, scale=0.02)
        run_grep(s, root)
        return s, stats

    def test_readdir_has_three_plus_peak_groups(self, grep_system):
        s, _ = grep_system
        prof = s.fs_profiles()["readdir"]
        counts = prof.counts()
        eof = sum(c for b, c in counts.items() if b <= 8)
        cached = sum(c for b, c in counts.items() if 9 <= b < 15)
        io = sum(c for b, c in counts.items() if b >= 15)
        assert eof > 0 and cached > 0 and io > 0

    def test_correlation_explains_first_peak(self, grep_system):
        # Figure 8: re-run readdir latencies against the past-EOF flag.
        s, stats = grep_system
        correlator = ValueCorrelator([PeakRange("first", 5, 8)],
                                     value_scale=1024)
        prof = s.fs_profiles()["readdir"]
        # Replay: every directory produced exactly one past-EOF call
        # (flag 1, fast) and its other calls carry flag 0.
        for bucket, count in prof.counts().items():
            latency = prof.spec.mid(bucket)
            flag = 1 if bucket <= 8 else 0
            for _ in range(count):
                correlator.record(latency, flag)
        assert correlator.discrimination("first") == 1.0

    def test_readpage_latency_small(self, grep_system):
        # readpage initiates I/O without waiting: its latency is far
        # below the readdir calls that wait for the page.
        s, _ = grep_system
        pset = s.fs_profiles()
        assert pset["readpage"].mean_latency() < 20_000
        read_io = [b for b in pset["readdir"].counts() if b >= 15]
        assert read_io


class TestLayeredProfiles:
    def test_user_latency_exceeds_fs_latency(self):
        s = System.build(with_timer=False)
        root, _ = build_source_tree(s, scale=0.005)
        run_grep(s, root)
        user_read = s.user_profiles()["read"]
        fs_read = s.fs_profiles()["read"]
        assert user_read.total_ops == fs_read.total_ops
        assert user_read.total_latency > fs_read.total_latency

    def test_driver_profile_shows_io_only(self):
        s = System.build(with_timer=False)
        root, _ = build_source_tree(s, scale=0.005)
        run_grep(s, root)
        drv = s.driver_profiles()["disk_read"]
        # All driver-level requests involve the device: >= ~20us.
        assert min(drv.counts()) >= 14

"""End-to-end tests of the continuous profiling service.

The acceptance pair for the service tentpole:

* N concurrent ``push`` clients stream segments into one server; the
  store's merged profile is **byte-identical** (via ``to_bytes``) to a
  serial merge of the same inputs, and

* the §6.1 lock-contention signature is detectable **live**: after a
  baseline of single-process random-read segments, one contended
  (two-process) segment raises an alert naming ``llseek`` within one
  segment interval.
"""

import subprocess
import sys
import threading
import time

import pytest

from repro.core.profileset import ProfileSet
from repro.service.client import ServiceClient
from repro.service.server import ProfileServer, ProfileService, ServiceConfig
from repro.workloads.runner import collect_profiles


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, dt):
        with self._lock:
            self.now += dt


@pytest.fixture
def server():
    clock = FakeClock()
    service = ProfileService(
        ServiceConfig(segment_seconds=30.0, retention=64,
                      baseline_segments=4, threshold=0.5, min_ops=50),
        clock=clock)
    srv = ProfileServer(service)
    srv.test_clock = clock
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    srv.server_close()


def workload_segments(seed, count, processes=1):
    return [collect_profiles("randomread", processes=processes,
                             iterations=300, num_cpus=2,
                             seed=seed + i)
            for i in range(count)]


class TestConcurrentPushes:
    def test_merged_store_byte_identical_to_serial_merge(self, server):
        host, port = server.address
        streams = [workload_segments(seed=100, count=3),
                   workload_segments(seed=200, count=3)]
        errors = []

        def pusher(segments):
            try:
                with ServiceClient(host, port) as client:
                    for pset in segments:
                        client.push(pset)
            except Exception as exc:  # propagate into the test
                errors.append(exc)

        threads = [threading.Thread(target=pusher, args=(s,))
                   for s in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []

        serial = ProfileSet.merged(
            [p for stream in streams for p in stream])
        with ServiceClient(host, port) as client:
            snapshot = client.snapshot()
        assert snapshot.to_bytes() == serial.to_bytes()
        assert snapshot.verify_checksums() == []

    def test_concurrent_pushes_across_rotations(self, server):
        host, port = server.address
        streams = [workload_segments(seed=300, count=4),
                   workload_segments(seed=400, count=4)]
        barrier = threading.Barrier(2)
        errors = []

        def pusher(segments):
            try:
                with ServiceClient(host, port) as client:
                    for pset in segments:
                        barrier.wait(timeout=60)
                        client.push(pset)
                        # Rotate between pushes: segments land in
                        # different store slots on each client.
                        server.test_clock.advance(17.0)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=pusher, args=(s,))
                   for s in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []

        serial = ProfileSet.merged(
            [p for stream in streams for p in stream])
        with ServiceClient(host, port) as client:
            assert client.snapshot().to_bytes() == serial.to_bytes()


class TestLiveLockContentionDetection:
    def test_contended_segment_alerts_naming_llseek(self, server):
        """The i_sem signature (§6.1) must be caught within one segment."""
        host, port = server.address
        with ServiceClient(host, port) as client:
            # Three quiet baseline segments: single-process random
            # reads — llseek is one uncontended peak.
            for i, pset in enumerate(workload_segments(seed=1, count=3)):
                client.push(pset)
                server.test_clock.advance(30.0)
            cursor, alerts = client.alerts(0)
            assert alerts == [], "baseline must not alert"

            # The injected pathology: a second process contends on the
            # inode semaphore; llseek grows a second (waiting) peak.
            contended = collect_profiles(
                "randomread", processes=2, iterations=300, num_cpus=2,
                seed=99)
            client.push(contended)
            server.test_clock.advance(30.0)  # close the contended segment
            cursor, alerts = client.alerts(cursor)

        affected = {a.operation for a in alerts}
        assert "llseek" in affected
        llseek_alert = next(a for a in alerts
                            if a.operation == "llseek")
        assert llseek_alert.kind == "new-peak"
        # One segment interval: the alert is attributed to the very
        # segment the contended push landed in (index 3).
        assert llseek_alert.segment == 3


class TestCliServePushWatch:
    def test_cli_round_trip(self, tmp_path):
        """osprof serve / push / watch wired together for real."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--segment-seconds", "3600",
             "--min-ops", "50"],
            stderr=subprocess.PIPE, text=True)
        try:
            line = proc.stderr.readline()
            assert "listening on" in line
            endpoint = line.split("listening on ")[1].split()[0]

            from repro.cli import main
            dump = tmp_path / "seg.ospb"
            pset = collect_profiles("randomread", processes=1,
                                    iterations=200, seed=5)
            pset.save(str(dump), format="binary")
            assert main(["push", endpoint, str(dump)]) == 0
            assert main(["push", endpoint, "--workload", "randomread",
                         "--iterations", "200", "--seed", "6"]) == 0

            host, port = endpoint.rsplit(":", 1)
            with ServiceClient(host, int(port)) as client:
                metrics = client.metrics()
            assert "osprof_ingest_requests_total 2" in metrics

            assert main(["watch", endpoint, "--once"]) == 0
            assert main(["watch", endpoint, "--once", "--metrics"]) == 0
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    def test_push_requires_source(self, capsys):
        from repro.cli import main
        assert main(["push", "127.0.0.1:1"]) == 2

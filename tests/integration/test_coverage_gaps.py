"""Odds and ends: small public-API paths not covered elsewhere."""

import os

import pytest

from repro.sim.process import CpuBurst
from repro.sim.scheduler import Kernel
from repro.sim.sync import RWLock
from repro.system import System


class TestHostprofWrite:
    def test_write_profiled(self, tmp_path):
        from repro.core.hostprof import SyscallProfiler

        prof = SyscallProfiler()
        path = str(tmp_path / "out")
        fd = prof.open(path, os.O_WRONLY | os.O_CREAT)
        n = prof.write(fd, b"hello")
        prof.close(fd)
        assert n == 5
        assert prof.profile_set()["write"].total_ops == 1


class TestRWLockReadHeld:
    def test_read_held_helper(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        rw = RWLock(k, "rw")

        def inner():
            yield CpuBurst(10)
            return "v"

        def body(proc):
            result = yield from rw.read_held(proc, inner())
            return result

        p = k.spawn(body, "p")
        k.run_until_done([p])
        assert p.exit_value == "v"
        assert rw.readers == 0


class TestExt2WriteValidation:
    def test_zero_write_rejected(self):
        system = System.build(with_timer=False)
        inode = system.tree.mkfile(system.root, "f", 0)
        handle = system.vfs.open_inode(inode)

        def body(proc):
            yield from system.vfs.write(proc, handle, 0)

        system.kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            system.kernel.run(max_events=500)

    def test_write_to_directory_rejected(self):
        system = System.build(with_timer=False)
        handle = system.vfs.open_inode(system.root)

        def body(proc):
            yield from system.vfs.write(proc, handle, 10)

        system.kernel.spawn(body, "p")
        with pytest.raises(ValueError):
            system.kernel.run(max_events=500)


class TestCliReiserfs:
    def test_run_with_reiserfs(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.prof"
        rc = main(["run", "grep", "--fs", "reiserfs",
                   "--scale", "0.005", "-o", str(out)])
        assert rc == 0
        assert "read" in out.read_text()


class TestBucketLabels:
    def test_labels_scale(self):
        from repro.core.buckets import BucketSpec

        spec = BucketSpec()
        # At the paper's 1.7 GHz the figure ruler reads ~28ns at
        # bucket 5 (their label is the bucket's representative time).
        assert spec.label(5) in ("19ns", "28ns")
        assert spec.label(31).endswith("s")

    def test_negative_bucket_rejected(self):
        from repro.core.buckets import BucketSpec

        with pytest.raises(ValueError):
            BucketSpec().low(-1)


class TestSystemRunUntil:
    def test_run_until_without_procs(self):
        system = System.build(with_timer=False)
        system.kernel.engine.schedule(5_000, lambda: None)
        system.run(until=10_000)
        assert system.kernel.now == 10_000

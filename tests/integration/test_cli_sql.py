"""``osprof db sql`` end to end: directory mode, service mode, formats.

The CLI contract under test: good queries print a table/CSV/JSON and
exit 0; every malformed query exits 1 with one ``osprof: error:`` line
(never a traceback); flag misuse exits 2; ``--endpoint`` reaches a live
``serve --db`` service through the same code path as ``--db``.
"""

import csv
import io
import json
import threading

import pytest

from repro.cli import main
from repro.core.profile import Layer, Profile
from repro.core.profileset import ProfileSet
from repro.warehouse import Warehouse


def pset(samples, layer=Layer.FILESYSTEM):
    out = ProfileSet()
    for op, latencies in samples.items():
        prof = Profile(op, layer=layer)
        for latency in latencies:
            prof.add(latency)
        out.insert(prof)
    return out


@pytest.fixture
def db(tmp_path):
    wh = Warehouse(tmp_path / "wh")
    wh.ingest("web-1", pset({"read": [100.0] * 6, "llseek": [10.0] * 3}),
              epoch=0)
    wh.ingest("web-2", pset({"read": [5000.0] * 2}), epoch=0)
    return str(tmp_path / "wh")


class TestDirectoryMode:
    def test_table_output(self, db, capsys):
        rc = main(["db", "sql",
                   "SELECT op, count() GROUP BY op ORDER BY op",
                   "--db", db])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].split() == ["op", "count()"]
        assert lines[2].split() == ["llseek", "3"]
        assert lines[3].split() == ["read", "8"]

    def test_csv_output(self, db, capsys):
        rc = main(["db", "sql",
                   "SELECT source, count() GROUP BY source "
                   "ORDER BY source", "--db", db, "--format", "csv"])
        assert rc == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows == [["source", "count()"],
                        ["web-1", "9"], ["web-2", "2"]]

    def test_json_output(self, db, capsys):
        rc = main(["db", "sql", "SELECT count()",
                   "--db", db, "--format", "json"])
        assert rc == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply == {"columns": ["count()"], "rows": [[11]]}

    def test_null_renders_as_dash_in_table(self, db, capsys):
        # min over an empty group: no rows at all — but a NULL from a
        # baseline gap must not crash the formatter, so exercise one.
        Warehouse(db).save_baseline("base", Warehouse(db).query("web-1"))
        rc = main(["db", "sql",
                   "SELECT op, emd('base') WHERE source = 'web-2' "
                   "GROUP BY op", "--db", db])
        assert rc == 0


class TestErrorHandling:
    @pytest.mark.parametrize("query", [
        "SELEKT 1",
        "SELECT nope",
        "SELECT op, count()",
        "SELECT emd('missing') GROUP BY op",
    ])
    def test_bad_query_exits_one_with_clean_error(self, db, query,
                                                  capsys):
        rc = main(["db", "sql", query, "--db", db])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("osprof: error:")
        assert "Traceback" not in err

    def test_db_and_endpoint_are_mutually_exclusive(self, db, capsys):
        assert main(["db", "sql", "SELECT count()"]) == 2
        assert main(["db", "sql", "SELECT count()", "--db", db,
                     "--endpoint", "localhost:1"]) == 2

    def test_unreachable_endpoint_is_clean_error(self, capsys):
        rc = main(["db", "sql", "SELECT count()",
                   "--endpoint", "127.0.0.1:1"])
        assert rc == 1
        assert capsys.readouterr().err.startswith("osprof: error:")


class TestServiceMode:
    def test_endpoint_queries_live_service(self, db, capsys):
        from repro.service.server import ProfileServer, ProfileService
        service = ProfileService(warehouse=Warehouse(db))
        server = ProfileServer(service, host="127.0.0.1", port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.address
        try:
            rc = main(["db", "sql", "SELECT count()",
                       "--endpoint", f"{host}:{port}",
                       "--format", "json"])
            assert rc == 0
            reply = json.loads(capsys.readouterr().out)
            assert reply["rows"] == [[11]]
            rc = main(["db", "sql", "SELECT nope",
                       "--endpoint", f"{host}:{port}"])
            assert rc == 1
            assert capsys.readouterr().err.startswith("osprof: error:")
        finally:
            server.shutdown()

"""Tests for the osprof command line."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dump_a(tmp_path):
    path = tmp_path / "a.prof"
    rc = main(["run", "grep", "--scale", "0.005", "--seed", "1",
               "-o", str(path)])
    assert rc == 0
    return str(path)


@pytest.fixture
def dump_b(tmp_path):
    path = tmp_path / "b.prof"
    rc = main(["run", "randomread", "--processes", "2",
               "--iterations", "100", "--seed", "2", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestRun:
    def test_run_writes_parseable_dump(self, dump_a):
        from repro.core.profileset import ProfileSet
        with open(dump_a) as f:
            pset = ProfileSet.load(f)
        assert "readdir" in pset
        assert pset.total_ops() > 0

    def test_run_to_stdout(self, capsys):
        rc = main(["run", "zerobyte", "--processes", "1",
                   "--iterations", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("# osprof 1")

    def test_run_layers_differ(self, tmp_path):
        user = tmp_path / "user.prof"
        driver = tmp_path / "driver.prof"
        main(["run", "grep", "--scale", "0.005", "--layer", "user",
              "-o", str(user)])
        main(["run", "grep", "--scale", "0.005", "--layer", "driver",
              "-o", str(driver)])
        assert "readdir" in user.read_text()
        assert "disk_read" in driver.read_text()

    def test_all_workloads_run(self, tmp_path):
        for workload in ("postmark", "clone"):
            rc = main(["run", workload, "--iterations", "50",
                       "-o", str(tmp_path / f"{workload}.prof")])
            assert rc == 0


class TestRender:
    def test_render_all(self, dump_a, capsys):
        assert main(["render", dump_a]) == 0
        out = capsys.readouterr().out
        assert "READDIR" in out
        assert "#" in out

    def test_render_single_op(self, dump_a, capsys):
        assert main(["render", dump_a, "--op", "read"]) == 0
        out = capsys.readouterr().out
        assert "READ" in out
        assert "READDIR" not in out

    def test_render_unknown_op_fails(self, dump_a, capsys):
        assert main(["render", dump_a, "--op", "bogus"]) == 1

    def test_render_top(self, dump_a, capsys):
        assert main(["render", dump_a, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("bucket = floor") == 1


class TestPeaksCompareGnuplot:
    def test_peaks_lists_buckets(self, dump_a, capsys):
        assert main(["peaks", dump_a]) == 0
        out = capsys.readouterr().out
        assert "buckets" in out

    def test_compare_flags_differences(self, dump_a, dump_b, capsys):
        assert main(["compare", dump_a, dump_b]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_compare_identical_sets(self, dump_a, capsys):
        assert main(["compare", dump_a, dump_a]) == 0
        out = capsys.readouterr().out
        assert "no interesting differences" in out

    def test_compare_metric_choice(self, dump_a, dump_b, capsys):
        assert main(["compare", dump_a, dump_b, "--metric",
                     "chi_squared", "--limit", "1"]) == 0

    def test_gnuplot_output(self, dump_a, capsys):
        assert main(["gnuplot", dump_a]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# ")
        # data lines are "<bucket> <count>"
        data_lines = [l for l in out.splitlines()
                      if l and not l.startswith("#")]
        assert all(len(l.split()) == 2 for l in data_lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])


class TestSampled:
    def test_sampled_ascii(self, capsys):
        rc = main(["sampled", "grep", "--scale", "0.01",
                   "--duration", "5", "--interval", "2.5",
                   "--op", "read"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "READ" in out
        assert "key:" in out

    def test_sampled_splot(self, capsys):
        rc = main(["sampled", "grep", "--scale", "0.01",
                   "--duration", "5", "--interval", "2.5",
                   "--op", "read", "--splot"])
        assert rc == 0
        out = capsys.readouterr().out
        data = [l for l in out.splitlines()
                if l and not l.startswith("#")]
        assert all(len(l.split()) == 3 for l in data)

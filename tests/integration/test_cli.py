"""Tests for the osprof command line."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dump_a(tmp_path):
    path = tmp_path / "a.prof"
    rc = main(["run", "grep", "--scale", "0.005", "--seed", "1",
               "-o", str(path)])
    assert rc == 0
    return str(path)


@pytest.fixture
def dump_b(tmp_path):
    path = tmp_path / "b.prof"
    rc = main(["run", "randomread", "--processes", "2",
               "--iterations", "100", "--seed", "2", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestRun:
    def test_run_writes_parseable_dump(self, dump_a):
        from repro.core.profileset import ProfileSet
        with open(dump_a) as f:
            pset = ProfileSet.load(f)
        assert "readdir" in pset
        assert pset.total_ops() > 0

    def test_run_to_stdout(self, capsys):
        rc = main(["run", "zerobyte", "--processes", "1",
                   "--iterations", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("# osprof 1")

    def test_run_layers_differ(self, tmp_path):
        user = tmp_path / "user.prof"
        driver = tmp_path / "driver.prof"
        main(["run", "grep", "--scale", "0.005", "--layer", "user",
              "-o", str(user)])
        main(["run", "grep", "--scale", "0.005", "--layer", "driver",
              "-o", str(driver)])
        assert "readdir" in user.read_text()
        assert "disk_read" in driver.read_text()

    def test_all_workloads_run(self, tmp_path):
        for workload in ("postmark", "clone"):
            rc = main(["run", workload, "--iterations", "50",
                       "-o", str(tmp_path / f"{workload}.prof")])
            assert rc == 0


class TestRender:
    def test_render_all(self, dump_a, capsys):
        assert main(["render", dump_a]) == 0
        out = capsys.readouterr().out
        assert "READDIR" in out
        assert "#" in out

    def test_render_single_op(self, dump_a, capsys):
        assert main(["render", dump_a, "--op", "read"]) == 0
        out = capsys.readouterr().out
        assert "READ" in out
        assert "READDIR" not in out

    def test_render_unknown_op_fails(self, dump_a, capsys):
        assert main(["render", dump_a, "--op", "bogus"]) == 1

    def test_render_top(self, dump_a, capsys):
        assert main(["render", dump_a, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("bucket = floor") == 1


class TestPeaksCompareGnuplot:
    def test_peaks_lists_buckets(self, dump_a, capsys):
        assert main(["peaks", dump_a]) == 0
        out = capsys.readouterr().out
        assert "buckets" in out

    def test_compare_flags_differences(self, dump_a, dump_b, capsys):
        assert main(["compare", dump_a, dump_b]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_compare_identical_sets(self, dump_a, capsys):
        assert main(["compare", dump_a, dump_a]) == 0
        out = capsys.readouterr().out
        assert "no interesting differences" in out

    def test_compare_metric_choice(self, dump_a, dump_b, capsys):
        assert main(["compare", dump_a, dump_b, "--metric",
                     "chi_squared", "--limit", "1"]) == 0

    def test_gnuplot_output(self, dump_a, capsys):
        assert main(["gnuplot", dump_a]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# ")
        # data lines are "<bucket> <count>"
        data_lines = [l for l in out.splitlines()
                      if l and not l.startswith("#")]
        assert all(len(l.split()) == 2 for l in data_lines)


class TestShardedRun:
    def test_run_with_workers_writes_parseable_dump(self, tmp_path):
        from repro.core.profileset import ProfileSet
        path = tmp_path / "sharded.prof"
        rc = main(["run", "randomread", "--iterations", "100",
                   "--workers", "2", "--seed", "5", "-o", str(path)])
        assert rc == 0
        pset = ProfileSet.load_path(str(path))
        assert pset.total_ops() > 0
        assert not pset.verify_checksums()

    def test_same_seed_and_shards_is_deterministic(self, tmp_path):
        # Same seed + shard/worker count => byte-identical merged profile.
        paths = [tmp_path / "a.prof", tmp_path / "b.prof"]
        for path in paths:
            rc = main(["run", "zerobyte", "--iterations", "60",
                       "--workers", "2", "--seed", "9", "-o", str(path)])
            assert rc == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_workers_do_not_change_merged_profile(self, tmp_path):
        serial = tmp_path / "serial.prof"
        parallel = tmp_path / "parallel.prof"
        base = ["run", "randomread", "--iterations", "100", "--seed", "3",
                "--shards", "2"]
        assert main(base + ["--workers", "1", "-o", str(serial)]) == 0
        assert main(base + ["--workers", "2", "-o", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_binary_format_round_trips(self, tmp_path):
        from repro.core.profileset import ProfileSet
        binary = tmp_path / "p.ospb"
        text = tmp_path / "p.prof"
        common = ["run", "zerobyte", "--iterations", "50", "--seed", "4"]
        assert main(common + ["--format", "binary", "-o", str(binary)]) == 0
        assert main(common + ["--format", "text", "-o", str(text)]) == 0
        assert binary.read_bytes().startswith(b"OSPROFB1")
        from_binary = ProfileSet.load_path(str(binary))
        from_text = ProfileSet.load_path(str(text))
        assert from_binary == from_text

    def test_binary_to_stdout(self, capsysbinary):
        rc = main(["run", "zerobyte", "--iterations", "30",
                   "--format", "binary"])
        assert rc == 0
        out = capsysbinary.readouterr().out
        from repro.core.profileset import ProfileSet
        assert ProfileSet.from_bytes(out).total_ops() > 0


class TestMerge:
    def test_merge_two_dumps(self, tmp_path, dump_a):
        from repro.core.profileset import ProfileSet
        other = tmp_path / "other.prof"
        assert main(["run", "zerobyte", "--iterations", "40",
                     "-o", str(other)]) == 0
        merged_path = tmp_path / "merged.prof"
        assert main(["merge", dump_a, str(other),
                     "-o", str(merged_path)]) == 0
        merged = ProfileSet.load_path(str(merged_path))
        a = ProfileSet.load_path(dump_a)
        b = ProfileSet.load_path(str(other))
        assert merged.total_ops() == a.total_ops() + b.total_ops()

    def test_merge_mixed_text_and_binary(self, tmp_path):
        from repro.core.profileset import ProfileSet
        text = tmp_path / "t.prof"
        binary = tmp_path / "b.ospb"
        assert main(["run", "zerobyte", "--iterations", "30", "--seed",
                     "1", "-o", str(text)]) == 0
        assert main(["run", "zerobyte", "--iterations", "30", "--seed",
                     "2", "--format", "binary", "-o", str(binary)]) == 0
        out = tmp_path / "m.ospb"
        assert main(["merge", str(text), str(binary), "--format",
                     "binary", "-o", str(out)]) == 0
        assert ProfileSet.load_path(str(out))["read"].total_ops == 120

    def test_merge_of_shards_equals_single_run(self, tmp_path):
        # osprof merge over individually collected shard dumps must
        # reproduce what run --shards produces in one step.
        from repro.core.shard import plan_shards, run_shard
        one_step = tmp_path / "one.prof"
        assert main(["run", "zerobyte", "--iterations", "80",
                     "--shards", "2", "--seed", "6",
                     "-o", str(one_step)]) == 0
        shard_paths = []
        for task in plan_shards("zerobyte", shards=2, seed=6,
                                iterations=80):
            path = tmp_path / f"shard{task.index}.ospb"
            path.write_bytes(run_shard(task))
            shard_paths.append(str(path))
        merged = tmp_path / "merged.prof"
        assert main(["merge", *shard_paths, "-o", str(merged)]) == 0
        assert merged.read_bytes() == one_step.read_bytes()

    def test_merge_rejects_resolution_mismatch(self, tmp_path, capsys):
        from repro.core.buckets import BucketSpec
        from repro.core.profileset import ProfileSet
        a = ProfileSet(spec=BucketSpec(1))
        a.add("read", 10)
        b = ProfileSet(spec=BucketSpec(2))
        b.add("read", 10)
        pa, pb = tmp_path / "a.prof", tmp_path / "b.prof"
        a.save(str(pa))
        b.save(str(pb))
        assert main(["merge", str(pa), str(pb),
                     "-o", str(tmp_path / "out")]) == 1
        assert "resolution" in capsys.readouterr().err

    def test_merge_rejects_corrupt_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.ospb"
        bad.write_bytes(b"OSPROFB1" + b"\x00" * 16)
        assert main(["merge", str(bad), "-o", str(tmp_path / "out")]) == 1
        assert "CRC mismatch" in capsys.readouterr().err

    def test_missing_dump_reports_cleanly(self, tmp_path, capsys):
        assert main(["render", str(tmp_path / "nope.prof")]) == 1
        assert "osprof: error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_unknown_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "grep", "--format", "xml"])

    def test_merge_requires_at_least_one_dump(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge"])


class TestResilienceFlags:
    def free_port(self):
        import socket
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_run_accepts_healing_flags(self, tmp_path):
        path = tmp_path / "healed.prof"
        rc = main(["run", "zerobyte", "--iterations", "40",
                   "--shard-retries", "1", "--salvage",
                   "-o", str(path)])
        assert rc == 0
        assert path.exists()

    def test_run_spool_dir_spools_instead_of_writing(self, tmp_path,
                                                     capsys):
        spool_dir = tmp_path / "spool"
        rc = main(["run", "zerobyte", "--iterations", "40",
                   "--spool-dir", str(spool_dir)])
        assert rc == 0
        assert "spooled" in capsys.readouterr().err
        from repro.service.spool import Spool
        assert Spool(str(spool_dir)).pending() == [1]

    def test_push_spools_offline_and_exits_zero(self, tmp_path, dump_a,
                                                capsys):
        spool_dir = tmp_path / "spool"
        rc = main(["push", f"127.0.0.1:{self.free_port()}", dump_a,
                   "--retries", "0", "--spool-dir", str(spool_dir)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "spooled" in err
        from repro.service.spool import Spool
        assert len(Spool(str(spool_dir))) == 1

    def test_push_without_spool_fails_loudly_offline(self, dump_a,
                                                     capsys):
        rc = main(["push", f"127.0.0.1:{self.free_port()}", dump_a,
                   "--retries", "0", "--backoff", "0.001"])
        assert rc == 1
        assert "unavailable" in capsys.readouterr().err

    def test_push_requires_some_source(self, capsys):
        rc = main(["push", "127.0.0.1:1"])
        assert rc == 2
        assert "give saved dumps" in capsys.readouterr().err

    def test_spool_only_drain_mode(self, tmp_path, capsys):
        from repro.service.server import ProfileServer, ProfileService
        from repro.service.spool import Spool
        from repro.core.profileset import ProfileSet
        spool_dir = tmp_path / "spool"
        blob = ProfileSet.from_operation_latencies(
            {"read": [100.0] * 10}).to_bytes()
        Spool(str(spool_dir)).append(blob)
        server = ProfileServer(ProfileService())
        server.serve_in_thread()
        try:
            host, port = server.address
            rc = main(["push", f"{host}:{port}",
                       "--spool-dir", str(spool_dir)])
            assert rc == 0
            assert "drained 1" in capsys.readouterr().err
            assert server.service.ingest_requests == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_serve_parser_accepts_hardening_flags(self):
        args = build_parser().parse_args(
            ["serve", "--read-timeout", "5", "--max-frame-mb", "1",
             "--max-pending", "2", "--drain-timeout", "0.5"])
        assert args.read_timeout == 5.0
        assert args.max_pending == 2

    def test_watch_parser_accepts_reconnect_cap(self):
        args = build_parser().parse_args(
            ["watch", "127.0.0.1:7461", "--reconnect-cap", "1.5"])
        assert args.reconnect_cap == 1.5


class TestSampled:
    def test_sampled_ascii(self, capsys):
        rc = main(["sampled", "grep", "--scale", "0.01",
                   "--duration", "5", "--interval", "2.5",
                   "--op", "read"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "READ" in out
        assert "key:" in out

    def test_sampled_splot(self, capsys):
        rc = main(["sampled", "grep", "--scale", "0.01",
                   "--duration", "5", "--interval", "2.5",
                   "--op", "read", "--splot"])
        assert rc == 0
        out = capsys.readouterr().out
        data = [l for l in out.splitlines()
                if l and not l.startswith("#")]
        assert all(len(l.split()) == 3 for l in data)


class TestCompareThreshold:
    @pytest.fixture
    def clean(self, tmp_path):
        path = tmp_path / "clean.ospb"
        assert main(["run", "randomread", "--processes", "1",
                     "--iterations", "200", "--seed", "7",
                     "--format", "binary", "-o", str(path)]) == 0
        return str(path)

    @pytest.fixture
    def contended(self, tmp_path):
        path = tmp_path / "contended.ospb"
        assert main(["run", "randomread", "--processes", "2",
                     "--iterations", "200", "--seed", "7",
                     "--format", "binary", "-o", str(path)]) == 0
        return str(path)

    def test_breach_exits_3(self, clean, contended, capsys):
        rc = main(["compare", clean, contended, "--threshold", "emd=0.5"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "BREACH llseek" in out
        assert "gate: FAIL" in out

    def test_within_threshold_exits_0(self, clean, tmp_path, capsys):
        other = tmp_path / "other.ospb"
        main(["run", "randomread", "--processes", "1", "--iterations",
              "200", "--seed", "8", "--format", "binary",
              "-o", str(other)])
        rc = main(["compare", clean, str(other),
                   "--threshold", "emd=0.5"])
        assert rc == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_repeatable_thresholds(self, clean, contended):
        rc = main(["compare", clean, contended,
                   "--threshold", "emd=100", "--threshold",
                   "chi_squared=0.001"])
        assert rc == 3

    def test_bad_threshold_is_one_clear_error(self, clean, capsys):
        rc = main(["compare", clean, clean, "--threshold", "emd=lots"])
        assert rc == 1
        assert "osprof: error" in capsys.readouterr().err

    def test_without_threshold_still_exits_0(self, clean, contended):
        assert main(["compare", clean, contended]) == 0


class TestDbCli:
    @pytest.fixture
    def dumps(self, tmp_path):
        paths = []
        for seed in (1, 2):
            path = tmp_path / f"cap{seed}.ospb"
            assert main(["run", "randomread", "--processes", "1",
                         "--iterations", "150", "--seed", str(seed),
                         "--format", "binary", "-o", str(path)]) == 0
            paths.append(str(path))
        return paths

    @pytest.fixture
    def db(self, tmp_path):
        return str(tmp_path / "wh")

    def test_ingest_query_round_trip(self, db, dumps, tmp_path, capsys):
        assert main(["db", "ingest", "--db", db, "--source", "web"]
                    + dumps) == 0
        assert "epoch=0" in capsys.readouterr().err
        out = tmp_path / "q.ospb"
        assert main(["db", "query", "--db", db, "--source", "web",
                     "--format", "binary", "-o", str(out)]) == 0
        from repro.core.profileset import ProfileSet
        merged = ProfileSet.merged(
            [ProfileSet.load_path(p) for p in dumps])
        assert out.read_bytes() == merged.to_bytes()

    def test_query_range_and_op_filter(self, db, dumps, capsys):
        main(["db", "ingest", "--db", db, "--source", "web"] + dumps)
        assert main(["db", "query", "--db", db, "--source", "web",
                     "--op", "llseek", "--since", "0", "--until", "0"]) == 0
        out = capsys.readouterr().out
        assert "llseek" in out
        assert "op read" not in out

    def test_compact_and_gc(self, db, dumps, capsys):
        main(["db", "ingest", "--db", db, "--source", "web"] + dumps)
        # Ingest the same dumps repeatedly to age out the early epochs.
        for _ in range(5):
            main(["db", "ingest", "--db", db, "--source", "web"] + dumps)
        rc = main(["db", "compact", "--db", db, "--fanout", "2",
                   "--keep", "2,2"])
        assert rc == 0
        assert "compaction(s)" in capsys.readouterr().err
        rc = main(["db", "gc", "--db", db, "--fanout", "2",
                   "--keep", "2,2"])
        assert rc == 0
        assert "evicted" in capsys.readouterr().err

    def test_baseline_save_list_rm(self, db, dumps, capsys):
        main(["db", "ingest", "--db", db, "--source", "web"] + dumps)
        assert main(["db", "baseline", "save", "clean", "--db", db,
                     "--from", dumps[0]]) == 0
        assert main(["db", "baseline", "save", "hist", "--db", db,
                     "--source", "web"]) == 0
        capsys.readouterr()
        assert main(["db", "baseline", "list", "--db", db]) == 0
        assert capsys.readouterr().out.split() == ["clean", "hist"]
        assert main(["db", "baseline", "rm", "--db", db, "clean"]) == 0
        assert main(["db", "baseline", "rm", "--db", db, "clean"]) == 1

    def test_baseline_save_needs_exactly_one_input(self, db, dumps):
        assert main(["db", "baseline", "save", "x", "--db", db]) == 2
        assert main(["db", "baseline", "save", "x", "--db", db,
                     "--from", dumps[0], "--source", "web"]) == 2

    def test_gate_pass_and_breach(self, db, dumps, tmp_path, capsys):
        main(["db", "baseline", "save", "clean", "--db", db,
              "--from", dumps[0]])
        assert main(["db", "gate", dumps[1], "--db", db,
                     "--baseline", "clean"]) == 0
        contended = tmp_path / "contended.ospb"
        main(["run", "randomread", "--processes", "2", "--iterations",
              "150", "--seed", "1", "--format", "binary",
              "-o", str(contended)])
        capsys.readouterr()
        rc = main(["db", "gate", str(contended), "--db", db,
                   "--baseline", "clean"])
        assert rc == 3
        assert "BREACH llseek" in capsys.readouterr().out

    def test_gate_missing_baseline_is_one_clear_error(self, db, dumps,
                                                      capsys):
        rc = main(["db", "gate", dumps[0], "--db", db,
                   "--baseline", "ghost"])
        assert rc == 1
        assert "no baseline named" in capsys.readouterr().err

    def test_bad_keep_is_one_clear_error(self, db, capsys):
        rc = main(["db", "gc", "--db", db, "--keep", "a,b"])
        assert rc == 1
        assert "bad --keep" in capsys.readouterr().err

    def test_scrub_detect_repair_cycle(self, db, dumps, tmp_path, capsys):
        # The full operator workflow: clean scrub exits 0, a bit-flip
        # makes scrub exit 3, --repair from the mirror restores the
        # exact bytes, and the re-scrub exits 0 again.
        mirror = str(tmp_path / "mir")
        assert main(["db", "ingest", "--db", db, "--mirror", mirror,
                     "--source", "web"] + dumps) == 0
        assert main(["db", "scrub", "--db", db, "--mirror", mirror]) == 0
        from pathlib import Path
        victim = next((Path(db) / "segments").rglob("*.ospb"))
        data = bytearray(victim.read_bytes())
        data[10] ^= 0xFF
        victim.write_bytes(bytes(data))
        capsys.readouterr()
        assert main(["db", "scrub", "--db", db, "--mirror", mirror]) == 3
        assert "corrupt" in capsys.readouterr().err
        assert main(["db", "scrub", "--db", db, "--mirror", mirror,
                     "--repair"]) == 0
        assert main(["db", "scrub", "--db", db, "--mirror", mirror]) == 0

    def test_scrub_repair_needs_mirror(self, db, dumps, capsys):
        main(["db", "ingest", "--db", db, "--source", "web"] + dumps)
        capsys.readouterr()
        assert main(["db", "scrub", "--db", db, "--repair"]) == 2
        assert "--mirror" in capsys.readouterr().err

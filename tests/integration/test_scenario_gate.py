"""The warehouse gate over the device-model scenario matrix.

Each committed fixture in ``tests/fixtures`` is the clean driver-layer
capture of one device-model scenario.  CI replays this exact flow in
its ``gate`` job; tier-1 keeps the fixtures honest from the inside:

* the fixture regenerates byte-for-byte from its pinned command line
  (else it is stale and must be regenerated and committed);
* a fresh clean capture under a *different* seed passes the gate —
  the scenario's shape is a property of the model, not of one seed;
* the paired regression scenario (worn SSD, degraded array, tighter
  throttle) breaches with exit 3 — the gate provably catches each
  model's pathology, not just the spindle's.
"""

from pathlib import Path

import pytest

from repro.cli import main

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"

STALE_HINT = ("committed gate fixture is stale — regenerate with "
              "'PYTHONPATH=src python tools/gen_gate_fixture.py' "
              "and commit the result")

#: (fixture file, clean scenario, regression scenario, breaching op)
MATRIX = (
    ("ssd_gc_clean_baseline.ospb", "ssd-gc", "ssd-gc-worn",
     "disk_write"),
    ("raid0_stripe_clean_baseline.ospb", "raid0-stripe",
     "raid0-degraded", "disk_read"),
    ("throttled_iops_clean_baseline.ospb", "throttled-iops",
     "throttled-iops-tight", "disk_read"),
)

IDS = [clean for _, clean, _, _ in MATRIX]


def scenario_capture(tmp_path, scenario: str, seed: int) -> str:
    path = tmp_path / f"{scenario}-{seed}.ospb"
    assert main(["run", "--scenario", scenario, "--seed", str(seed),
                 "--layer", "driver", "--format", "binary",
                 "-o", str(path)]) == 0
    return str(path)


def saved_baseline(tmp_path, fixture: str) -> str:
    db_dir = str(tmp_path / "wh")
    assert main(["db", "baseline", "save", "clean", "--db", db_dir,
                 "--from", str(FIXTURE_DIR / fixture)]) == 0
    return db_dir


@pytest.mark.parametrize("fixture,clean,regression,op", MATRIX, ids=IDS)
def test_fixture_matches_regeneration_pins(tmp_path, fixture, clean,
                                           regression, op):
    from tools.gen_gate_fixture import FIXTURES
    fresh = tmp_path / "regen.ospb"
    assert main(FIXTURES[fixture] + ["-o", str(fresh)]) == 0
    assert fresh.read_bytes() == (FIXTURE_DIR / fixture).read_bytes(), \
        STALE_HINT


@pytest.mark.parametrize("fixture,clean,regression,op", MATRIX, ids=IDS)
def test_clean_scenario_passes_under_a_fresh_seed(tmp_path, capsys,
                                                  fixture, clean,
                                                  regression, op):
    db = saved_baseline(tmp_path, fixture)
    fresh = scenario_capture(tmp_path, clean, seed=2026)
    rc = main(["db", "gate", fresh, "--db", db, "--baseline", "clean"])
    assert rc == 0, STALE_HINT
    assert "gate: PASS" in capsys.readouterr().out


@pytest.mark.parametrize("fixture,clean,regression,op", MATRIX, ids=IDS)
def test_regression_scenario_breaches(tmp_path, capsys, fixture, clean,
                                      regression, op):
    db = saved_baseline(tmp_path, fixture)
    bad = scenario_capture(tmp_path, regression, seed=2006)
    rc = main(["db", "gate", bad, "--db", db, "--baseline", "clean"])
    assert rc == 3
    out = capsys.readouterr().out
    assert f"BREACH {op}" in out
    assert "gate: FAIL" in out

"""Cross-module property-based tests (hypothesis).

Deeper invariants than the per-module suites: serialization fidelity,
resolution-collapse equivalence, page-cache bounds, TCP delivery
ordering, and workload conservation laws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import BucketSpec, LatencyBuckets
from repro.core.profileset import ProfileSet
from repro.sim.engine import seconds
from repro.sim.scheduler import Kernel


op_names = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
latency_lists = st.lists(st.floats(min_value=0, max_value=1e14),
                         min_size=1, max_size=50)


class TestSerializationProperties:
    @given(st.dictionaries(op_names, latency_lists,
                           min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_dump_load_preserves_counts(self, samples):
        pset = ProfileSet.from_operation_latencies(samples)
        loaded = ProfileSet.loads(pset.dumps())
        assert loaded.operations() == pset.operations()
        for op in pset.operations():
            assert loaded[op].counts() == pset[op].counts()
            assert loaded[op].total_ops == pset[op].total_ops
            assert loaded[op].verify_checksum()

    @given(st.dictionaries(op_names, latency_lists,
                           min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_double_roundtrip_is_fixed_point(self, samples):
        pset = ProfileSet.from_operation_latencies(samples)
        once = ProfileSet.loads(pset.dumps()).dumps()
        twice = ProfileSet.loads(ProfileSet.loads(once).dumps()).dumps()
        assert once == twice


class TestResolutionProperties:
    @given(st.lists(st.floats(min_value=1, max_value=1e12),
                    min_size=1, max_size=100),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_higher_resolution_collapses_to_r1(self, latencies, r):
        """r>1 carries strictly more information: collapsing its
        buckets by b // r reproduces the r=1 histogram exactly."""
        fine = LatencyBuckets.from_latencies(latencies, BucketSpec(r))
        coarse = LatencyBuckets.from_latencies(latencies, BucketSpec(1))
        collapsed = {}
        for b, c in fine.counts().items():
            collapsed[b // r] = collapsed.get(b // r, 0) + c
        assert collapsed == coarse.counts()


class TestPageCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=5),
                              st.integers(min_value=0, max_value=20)),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_clean_resident_pages_bounded_by_capacity(self, accesses):
        kernel = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        from repro.vfs.pagecache import PageCache

        cache = PageCache(kernel, capacity_pages=8)
        for ino, page_index in accesses:
            cache.install_resident(ino, page_index)
        clean = sum(1 for p in cache._pages.values()
                    if p.resident and not p.dirty)
        assert clean <= 8

    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_lookup_after_install_always_hits(self, pages):
        kernel = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        from repro.vfs.pagecache import PageCache

        cache = PageCache(kernel, capacity_pages=1024)
        for page_index in pages:
            cache.install_resident(1, page_index)
            assert cache.lookup(1, page_index) is not None


class TestTcpProperties:
    @given(st.lists(st.integers(min_value=40, max_value=1460),
                    min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=25, deadline=None)
    def test_all_segments_eventually_delivered(self, sizes, loss):
        from repro.net.tcp import TcpConnection, TcpEndpoint

        kernel = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        a = TcpEndpoint("a", kernel, ack_immediately=True)
        b = TcpEndpoint("b", kernel, ack_immediately=True)
        TcpConnection(kernel, a, b, loss_rate=loss)
        got = []
        b.on_receive = lambda p: got.append(p.describe)
        for i, size in enumerate(sizes):
            a.send(size, f"seg{i}")
        kernel.run(until=seconds(60.0))
        assert len(got) == len(sizes)

    @given(st.lists(st.integers(min_value=40, max_value=1460),
                    min_size=2, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_lossless_delivery_preserves_order(self, sizes):
        from repro.net.tcp import TcpConnection, TcpEndpoint

        kernel = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        a = TcpEndpoint("a", kernel, ack_immediately=True)
        b = TcpEndpoint("b", kernel, ack_immediately=True)
        TcpConnection(kernel, a, b)
        got = []
        b.on_receive = lambda p: got.append(p.describe)
        for i, size in enumerate(sizes):
            a.send(size, f"seg{i}")
        kernel.run(until=seconds(5.0))
        assert got == [f"seg{i}" for i in range(len(sizes))]


class TestWorkloadConservation:
    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=10, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_zero_byte_reads_all_profiled(self, processes, iterations):
        from repro.system import System
        from repro.workloads import run_zero_byte_reads

        system = System.build(with_timer=False, seed=3)
        run_zero_byte_reads(system, processes=processes,
                            iterations=iterations)
        prof = system.user_profiles()["read"]
        assert prof.total_ops == processes * iterations
        assert prof.verify_checksum()

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_grep_scans_exactly_the_tree(self, seed):
        from repro.system import System
        from repro.workloads import build_source_tree, run_grep

        system = System.build(with_timer=False, seed=seed)
        root, stats = build_source_tree(system, scale=0.005, seed=seed)
        result = run_grep(system, root)
        assert result.files == stats.files
        assert result.bytes_scanned == stats.total_bytes
        assert result.directories == stats.directories


class TestDeterminismProperties:
    @given(st.integers(min_value=1, max_value=2**20))
    @settings(max_examples=5, deadline=None)
    def test_identical_seeds_identical_profiles(self, seed):
        from repro.system import System
        from repro.workloads import RandomReadConfig, run_random_read

        def run():
            system = System.build(num_cpus=2, with_timer=False,
                                  seed=seed)
            run_random_read(system,
                            RandomReadConfig(processes=2,
                                             iterations=60))
            return system.fs_profiles().dumps(), system.kernel.now

        first = run()
        second = run()
        assert first == second

    @given(st.integers(min_value=1, max_value=2**20))
    @settings(max_examples=5, deadline=None)
    def test_cifs_mount_deterministic(self, seed):
        from repro.net import build_cifs_mount
        from repro.workloads import run_grep

        def run():
            mount = build_cifs_mount(scale=0.005, seed=seed)
            run_grep(mount.client, mount.root)
            return (mount.client.kernel.now,
                    len(mount.sniffer.packets))

        assert run() == run()

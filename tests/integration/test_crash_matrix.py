"""The crash-consistency matrix: every durable site, every crash image.

Every durable writer funnels through :mod:`repro.core.durable`, so one
:class:`~repro.core.crashfs.CrashFS` recorder observes the exact op
stream of a whole scenario — warehouse ingest/compact/gc, spool
append/drain, relay accept/forward.  The drivers here then *enumerate*:
for every prefix of that op stream and every page-cache outcome mode
(``flush``, ``strict``, ``rename-no-data``, ``data-no-rename``,
``torn``), materialize the crash image, reopen it with the real
recovery code, and assert the recovery invariant:

* nothing acked before the crash is lost;
* the index/ledger equals a pure replay of the durable journal;
* queries are byte-identical to a legal pre-crash state (anything at
  or after the last ack — un-acked data *may* survive), or the
  recovery path fails loudly, never silently wrong;
* recovering twice equals recovering once.

Violations are collected, not asserted inline, so the regression test
at the bottom can re-introduce the historical fsync-before-rename gap
and prove the matrix actually catches it.

``OSPROF_FAULT_SEED`` varies the torn-write positions, same as the
deterministic fault plane.
"""

import itertools
import os

import pytest

from repro.core import durable
from repro.core.crashfs import MODES, CrashFS
from repro.core.profileset import ProfileSet
from repro.service.relay import RelayService
from repro.service.spool import Spool
from repro.warehouse import CompactionPolicy, Warehouse, WarehouseIndex

SEED = int(os.environ.get("OSPROF_FAULT_SEED", "2006"))

#: Tiny tier geometry: 8 ingests exercise two compaction tiers *and* a
#: top-tier retention eviction, keeping the op log (hence the crash
#: image count) small enough to enumerate exhaustively.
TINY = CompactionPolicy(fanout=2, keep=(1, 1, 1))

EPOCHS = 8


def pset(tag):
    return ProfileSet.from_operation_latencies(
        {"read": [100.0 + tag] * 4, "write": [40.0 + tag] * 2})


def enumerate_images(fs, end, scratch, check):
    """Run *check* on every (mode, crash point) image; collect failures."""
    violations = []
    for mode in MODES:
        for point in range(end + 1):
            img = fs.materialize(scratch, point, mode, seed=SEED)
            for problem in check(img, point, mode):
                violations.append(f"[{mode} @ op {point}] {problem}")
    return violations


# -- warehouse: ingest, compact, gc ------------------------------------------

def drive_warehouse(fs, live):
    """Record a full warehouse life cycle; return the acked states.

    Each entry is ``(op mark, query bytes)``: at crash point ``p`` the
    last state with ``mark <= p`` had been acked to the caller, and
    every later state is legal too (un-acked data may survive).
    """
    with durable.recording(fs):
        wh = Warehouse(live, policy=TINY)
        states = [(fs.mark(), wh.query("web").to_bytes())]
        for epoch in range(EPOCHS):
            wh.ingest("web", pset(epoch))
            states.append((fs.mark(), wh.query("web").to_bytes()))
        created = wh.compact()
        assert created, "scenario must exercise compaction"
        states.append((fs.mark(), wh.query("web").to_bytes()))
        evicted = wh.gc()
        assert evicted, "scenario must exercise a retention eviction"
        states.append((fs.mark(), wh.query("web").to_bytes()))
    return states


def check_warehouse(img, point, mode, states):
    violations = []
    acked = max((i for i, (mark, _) in enumerate(states)
                 if mark <= point), default=0)
    legal = {snapshot for _, snapshot in states[acked:]}
    try:
        wh = Warehouse(img, policy=TINY)
        got = wh.query("web").to_bytes()
        if got not in legal:
            violations.append(
                f"recovered query matches no state at/after ack "
                f"#{acked} (acked data lost or phantom bytes)")
        replayed = WarehouseIndex()
        for record in wh.log.replay():
            replayed.apply(record)
        if replayed.live_files() != wh.index.live_files():
            violations.append("recovered index != pure log replay")
        again = Warehouse(img, policy=TINY)
        if again.query("web").to_bytes() != got:
            violations.append("recovering twice != recovering once")
        # Housekeeping on a crash image must not raise and must keep
        # the warehouse serving (gc may legally evict by retention).
        again.gc()
        again.query("web")
    except Exception as exc:
        violations.append(f"recovery raised {exc!r}")
    return violations


class TestWarehouseMatrix:
    def test_every_crash_image_recovers(self, tmp_path):
        fs = CrashFS(tmp_path / "live")
        states = drive_warehouse(fs, tmp_path / "live")
        violations = enumerate_images(
            fs, fs.mark(), tmp_path / "img",
            lambda img, p, m: check_warehouse(img, p, m, states))
        assert violations == []


# -- spool: append, drain ----------------------------------------------------

def drive_spool(fs, live):
    with durable.recording(fs):
        spool = Spool(live, client_id="c9")
        payloads = {}
        for i in range(3):
            blob = pset(i).to_bytes()
            seq = spool.append(blob)
            payloads[seq] = blob
            fs.note(("appended", seq))
        spool.drain(
            lambda seq, payload: fs.note(("delivered", seq, payload)))
    return payloads


def check_spool(img, point, mode, fs, payloads):
    violations = []
    notes = fs.notes_through(point)
    acked = {tag[1] for tag in notes if tag[0] == "appended"}
    delivered = {tag[1]: tag[2] for tag in notes if tag[0] == "delivered"}
    for seq, blob in delivered.items():
        if blob != payloads[seq]:
            violations.append(f"delivered seq {seq} bytes differ")
    try:
        spool = Spool(img)
        pending = set(spool.pending())
        if pending != set(Spool(img).pending()):
            violations.append("reopening twice != reopening once")
        for seq in sorted(acked):
            if seq in delivered:
                continue  # at-least-once: delivered entries may linger
            if seq not in pending:
                violations.append(f"acked seq {seq} lost")
            elif spool.payload(seq) != payloads[seq]:
                violations.append(f"acked seq {seq} bytes differ")
        fresh = spool.append(pset(99).to_bytes())
        if fresh in acked:
            violations.append(f"sequence number {fresh} reused")
    except Exception as exc:
        violations.append(f"recovery raised {exc!r}")
    return violations


class TestSpoolMatrix:
    def test_every_crash_image_recovers(self, tmp_path):
        fs = CrashFS(tmp_path / "live")
        payloads = drive_spool(fs, tmp_path / "live")
        violations = enumerate_images(
            fs, fs.mark(), tmp_path / "img",
            lambda img, p, m: check_spool(img, p, m, fs, payloads))
        assert violations == []


# -- relay: accept, spool, write-ahead forward -------------------------------

class StubUpstream:
    """An upstream with the real ledger semantics: dedup by sequence,
    and a replayed sequence must carry byte-identical payload."""

    def __init__(self, fs=None, seen=None):
        self.fs = fs
        self.seen = dict(seen or {})
        self.violations = []

    def push_with_seq(self, seq, payload):
        if self.fs is not None:
            self.fs.note(("up", seq, payload))
        prior = self.seen.setdefault(seq, payload)
        if prior != payload:
            self.violations.append(
                f"up_seq {seq} replayed with different bytes "
                f"(exactly-once broken)")
        return "ok"

    def close(self):
        pass


def drive_relay(fs, live):
    with durable.recording(fs):
        relay = RelayService(live, upstream=("127.0.0.1", 1), batch=2)
        relay._upstream_client = StubUpstream(fs=fs)
        pushes = {}
        for i in (1, 2, 3):
            blob = pset(i).to_bytes()
            relay.accept_sequenced("c1", i, blob)
            pushes[i] = blob
            fs.note(("acked", i))
        relay.forward()  # batch=2 -> two upstream pushes, two commits
    return pushes


def check_relay(img, point, mode, fs, pushes):
    violations = []
    upstream_seen = {}
    acked = set()
    for tag in fs.notes_through(point):
        if tag[0] == "up":
            _, seq, payload = tag
            prior = upstream_seen.setdefault(seq, payload)
            if prior != payload:
                violations.append(f"up_seq {seq} bytes diverged pre-crash")
        elif tag[0] == "acked":
            acked.add(tag[1])
    try:
        # The real restart path: purge below the watermark, rebuild the
        # ledger from spool + state, replay the in-flight marker.
        relay = RelayService(img, upstream=("127.0.0.1", 1), batch=2)
        stub = StubUpstream(seen=upstream_seen)
        relay._upstream_client = stub
        relay.forward()
        violations.extend(stub.violations)
        if relay.pending_entries():
            violations.append("forward-to-completion left spooled entries")
        final = [stub.seen[seq] for seq in sorted(stub.seen)]
        got = ProfileSet.merged(
            [ProfileSet.from_bytes(blob) for blob in final]).to_bytes()
        # Legal outcome: a flat merge of every acked push plus any
        # subset of the un-acked ones (their clients never got an ack
        # and will retry; the ledger dedups the retry).
        unacked = [i for i in pushes if i not in acked]
        legal = set()
        for extra in itertools.chain.from_iterable(
                itertools.combinations(unacked, n)
                for n in range(len(unacked) + 1)):
            ids = sorted(acked | set(extra))
            legal.add(ProfileSet.merged(
                [ProfileSet.from_bytes(pushes[i]) for i in ids]).to_bytes())
        if got not in legal:
            violations.append(
                "upstream merge is not acked-pushes + a subset of "
                "un-acked ones (lost or double-merged data)")
    except Exception as exc:
        violations.append(f"recovery raised {exc!r}")
    return violations


class TestRelayMatrix:
    def test_every_crash_image_recovers(self, tmp_path):
        fs = CrashFS(tmp_path / "live")
        pushes = drive_relay(fs, tmp_path / "live")
        violations = enumerate_images(
            fs, fs.mark(), tmp_path / "img",
            lambda img, p, m: check_relay(img, p, m, fs, pushes))
        assert violations == []


# -- the regression: the matrix must catch the historical fsync gap ----------

class TestMatrixCatchesTheBug:
    """Re-introduce the pre-fix bug (no fsync before rename, no parent
    dir fsync after) and assert the enumeration flags it.  If this test
    ever fails, the harness has gone blind — the crash matrix proves
    nothing anymore."""

    @pytest.fixture
    def unsynced_writes(self, monkeypatch):
        real = durable.write_atomic

        def buggy(path, data, *, fsync=True):
            real(path, data, fsync=False)

        monkeypatch.setattr(durable, "write_atomic", buggy)

    def test_warehouse_gap_is_flagged(self, tmp_path, unsynced_writes):
        fs = CrashFS(tmp_path / "live")
        with durable.recording(fs):
            wh = Warehouse(tmp_path / "live", policy=TINY)
            states = [(fs.mark(), wh.query("web").to_bytes())]
            for epoch in range(3):
                wh.ingest("web", pset(epoch))
                states.append((fs.mark(), wh.query("web").to_bytes()))
        violations = enumerate_images(
            fs, fs.mark(), tmp_path / "img",
            lambda img, p, m: check_warehouse(img, p, m, states))
        assert violations, (
            "the un-fsynced write_atomic went unnoticed: the crash "
            "matrix no longer catches the historical durability gap")
        # The classic symptom: a rename made durable while its payload
        # was not — a committed-looking segment with no bytes behind it.
        assert any("rename-no-data" in v or "strict" in v
                   for v in violations)

    def test_spool_gap_is_flagged(self, tmp_path, unsynced_writes):
        fs = CrashFS(tmp_path / "live")
        payloads = drive_spool(fs, tmp_path / "live")
        violations = enumerate_images(
            fs, fs.mark(), tmp_path / "img",
            lambda img, p, m: check_spool(img, p, m, fs, payloads))
        assert violations

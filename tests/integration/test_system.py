"""Tests for the System facade."""

import pytest

from repro.core.buckets import BucketSpec
from repro.fs.ext2 import Ext2
from repro.fs.reiserfs import Reiserfs
from repro.sim.engine import seconds
from repro.system import System


class TestBuild:
    def test_defaults(self):
        s = System.build()
        assert isinstance(s.fs, Ext2)
        assert len(s.kernel.cpus) == 1
        assert s.timer is not None
        assert s.sampled is None

    def test_reiserfs(self):
        s = System.build(fs_type="reiserfs")
        assert isinstance(s.fs, Reiserfs)

    def test_unknown_fs_rejected(self):
        with pytest.raises(ValueError):
            System.build(fs_type="zfs")

    def test_custom_fs_factory(self):
        class MiniFs(Ext2):
            name = "mini"

        s = System.build(fs_factory=lambda k, d, i, a: MiniFs(k, d, i, a))
        assert s.fs.name == "mini"

    def test_sample_interval_attaches_sampler(self):
        s = System.build(sample_interval=seconds(2.5))
        assert s.sampled is not None

    def test_custom_bucket_resolution(self):
        s = System.build(spec=BucketSpec(2), with_timer=False)
        assert s.fs_profiler.profiles.spec.resolution == 2

    def test_no_timer(self):
        s = System.build(with_timer=False)
        assert s.timer is None

    def test_determinism_across_builds(self):
        from repro.workloads.postmark import PostmarkConfig, run_postmark

        def run():
            s = System.build(seed=77, with_timer=False)
            report = run_postmark(s, PostmarkConfig(files=10,
                                                    transactions=40))
            return (report.elapsed, report.system, s.kernel.now)

        assert run() == run()

    def test_seed_changes_results(self):
        from repro.workloads.postmark import PostmarkConfig, run_postmark

        def run(seed):
            s = System.build(seed=seed, with_timer=False)
            report = run_postmark(s, PostmarkConfig(files=10,
                                                    transactions=40))
            return s.kernel.now

        assert run(1) != run(2)


class TestFacadeHelpers:
    def test_root_created_once(self):
        s = System.build(with_timer=False)
        assert s.root is s.root
        assert s.fs.root is s.root

    def test_walker_resolves(self):
        s = System.build(with_timer=False)
        d = s.tree.mkdir(s.root, "etc")
        s.tree.mkfile(d, "hosts", 100)
        walker = s.walker()
        assert walker.exists("/etc/hosts")

    def test_elapsed_seconds(self):
        s = System.build(with_timer=False)
        s.kernel.engine.schedule(seconds(2.0), lambda: None)
        s.run(until=seconds(2.0))
        assert s.elapsed_seconds() == pytest.approx(2.0)

    def test_profile_accessors_distinct(self):
        s = System.build(with_timer=False)
        assert s.user_profiles() is not s.fs_profiles()
        assert s.driver_profiles() is s.driver.profiler.profile_set()

    def test_shutdown_passthrough(self):
        s = System.build(with_timer=False)

        def endless(proc):
            from repro.sim.process import CpuBurst
            while True:
                yield CpuBurst(100)

        p = s.kernel.spawn(endless, "e")
        s.run(until=10_000)
        s.shutdown()
        assert p.done


class TestProcFsIntegration:
    def test_layers_exposed(self):
        from repro.system import System

        s = System.build(with_timer=False)
        assert s.procfs.ls() == ["/proc/osprof/driver",
                                 "/proc/osprof/fs",
                                 "/proc/osprof/user"]

    def test_reset_between_phases(self):
        from repro.system import System
        from repro.workloads.microbench import zero_byte_read_body

        s = System.build(with_timer=False)
        inode = s.tree.mkfile(s.root, "empty", 0)

        def phase(iterations):
            p = s.kernel.spawn(
                lambda proc: zero_byte_read_body(s, proc, inode,
                                                 iterations), "zbr")
            s.run([p])

        phase(100)
        snap = s.procfs.snapshot("/proc/osprof/user")
        assert snap["read"].total_ops == 100
        s.procfs.write("/proc/osprof/user", "reset")
        phase(50)
        snap2 = s.procfs.snapshot("/proc/osprof/user")
        assert snap2["read"].total_ops == 50

"""docs/QUERY.md stays in sync with the SQL engine.

Every ``worked-setup``/``worked-query`` console block in the document
is extracted and executed: the setup commands build the llseek-fix
warehouse exactly as shown, then each documented query must print
exactly the documented table.  If the engine, the CLI formatter, or
the simulation drifts, this fails until the page is fixed.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main

QUERY_MD = Path(__file__).resolve().parents[2] / "docs" / "QUERY.md"


def console_blocks(tag: str):
    text = QUERY_MD.read_text()
    blocks = re.findall(
        rf"<!-- {tag} -->\s*```console\n(.*?)```", text, re.DOTALL)
    assert blocks, f"no {tag} blocks in QUERY.md"
    return blocks


def commands_of(block: str):
    """The ``$ osprof ...`` commands, with ``\\`` continuations joined."""
    joined = block.replace("\\\n", " ")
    return [line[len("$ osprof "):].strip()
            for line in joined.splitlines()
            if line.startswith("$ osprof ")]


@pytest.fixture(scope="module")
def doc_warehouse(tmp_path_factory):
    """Run the documented setup commands verbatim in a scratch dir."""
    root = tmp_path_factory.mktemp("querydoc")
    [setup] = console_blocks("worked-setup")
    commands = commands_of(setup)
    assert len(commands) == 5
    for command in commands:
        args = [arg if not arg.endswith((".prof", "wh"))
                else str(root / arg) for arg in shlex.split(command)]
        assert main(args) == 0
    return root


@pytest.mark.parametrize("index", range(4))
def test_documented_query_output_is_real(doc_warehouse, capsys, index):
    block = console_blocks("worked-query")[index]
    [command] = commands_of(block)
    expected = "\n".join(
        line for line in block.splitlines()
        if not line.startswith("$ ")).strip("\n")
    args = [arg if arg != "wh" else str(doc_warehouse / "wh")
            for arg in shlex.split(command)]
    capsys.readouterr()
    assert main(args) == 0
    out = capsys.readouterr().out.strip("\n")
    assert out == expected, (
        f"QUERY.md block {index} is stale:\n--- documented ---\n"
        f"{expected}\n--- actual ---\n{out}")


def test_every_worked_query_block_is_covered():
    assert len(console_blocks("worked-query")) == 4

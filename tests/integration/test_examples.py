"""Every script in examples/ must actually run.

Each example is imported as a module, its workload-size constants are
shrunk so the whole parametrized set stays in tier-1 time budget, and
its ``main()`` is executed for real — a broken import, a renamed API,
or an example drifting from the library fails here, not in a user's
terminal.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

# Per-module overrides applied after import, before main(): the same
# code paths at a fraction of the simulated (or real) work. Only
# constants the example actually defines may be listed; a callable
# value is invoked with the imported module (for unit helpers like
# seconds()).
TINY = {
    # anomaly_watch's reporting assumes 0.5 s segments, so only the
    # duration shrinks; cluster_outliers' sick node is "node3", so at
    # least 4 nodes must exist.
    "anomaly_watch": {"DURATION": lambda m: m.seconds(3.0),
                      "DEGRADE_AT": lambda m: m.seconds(1.5)},
    "cluster_outliers": {"NODES": 4},
    "find_lock_contention": {"ITERATIONS": 300},
    "network_profiling": {"SCALE": 0.01},
    "profile_host_os": {"FILE_SIZE": 64 << 10, "READS": 100},
    "timeline_profile": {"DURATION_SECONDS": 2.0, "SAMPLE_INTERVAL": 0.5},
}


def load_example(path: Path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_every_example_is_covered():
    """A new example must either run at full size or get a TINY entry."""
    assert EXAMPLE_SCRIPTS, "examples/ directory is empty?"
    unknown = set(TINY) - {p.stem for p in EXAMPLE_SCRIPTS}
    assert not unknown, f"TINY lists missing examples: {unknown}"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS,
                         ids=[p.stem for p in EXAMPLE_SCRIPTS])
def test_example_runs(script, capsys):
    module = load_example(script)
    assert hasattr(module, "main"), f"{script.name} has no main()"

    for name, value in TINY.get(script.stem, {}).items():
        assert hasattr(module, name), (
            f"{script.name} no longer defines {name}; update TINY")
        setattr(module, name, value(module) if callable(value) else value)

    module.main()

    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"

"""Failure injection: disk media errors and network packet loss.

The injected failures are exactly the kind of behaviour OSprof exists
to expose: transparent retries that only show up as latency.
"""

import pytest

from repro.disk.device import Disk
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.sim.engine import seconds
from repro.sim.scheduler import Kernel
from repro.system import System
from repro.workloads import build_source_tree, run_grep


class TestDiskErrors:
    def make_disk(self, error_rate, max_retries=3):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        return k, Disk(k, error_rate=error_rate,
                       max_retries=max_retries, cache_segments=0)

    def test_errors_retried_transparently(self):
        k, disk = self.make_disk(error_rate=0.3)
        requests = [disk.submit(i * 200) for i in range(50)]
        k.run(max_events=20_000)
        assert all(r.completed_at > 0 for r in requests)
        assert disk.media_errors > 0
        assert disk.retries_performed > 0
        assert not any(r.failed for r in requests)

    def test_retries_increase_latency(self):
        k_good, good = self.make_disk(error_rate=0.0)
        k_bad, bad = self.make_disk(error_rate=0.4)
        good_reqs = [good.submit(i * 300) for i in range(60)]
        bad_reqs = [bad.submit(i * 300) for i in range(60)]
        k_good.run(max_events=50_000)
        k_bad.run(max_events=50_000)
        mean_good = sum(r.latency for r in good_reqs) / len(good_reqs)
        mean_bad = sum(r.latency for r in bad_reqs) / len(bad_reqs)
        assert mean_bad > mean_good * 1.2

    def test_exhausted_retries_reported(self):
        k, disk = self.make_disk(error_rate=0.95, max_retries=1)
        requests = [disk.submit(i * 100) for i in range(30)]
        k.run(max_events=20_000)
        assert any(r.failed for r in requests)
        # Even failures complete (callers are woken, never stranded).
        assert all(r.completed_at > 0 for r in requests)

    def test_validation(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        with pytest.raises(ValueError):
            Disk(k, error_rate=1.0)
        with pytest.raises(ValueError):
            Disk(k, max_retries=-1)

    def test_retries_visible_in_driver_profile(self):
        # The whole point: a flaky disk shows up as a latency mode.
        system_good = System.build(with_timer=False, seed=5)
        system_bad = System.build(with_timer=False, seed=5)
        system_bad.disk.error_rate = 0.3
        for system in (system_good, system_bad):
            root, _ = build_source_tree(system, scale=0.01)
            run_grep(system, root)
        good = system_good.driver_profiles()["disk_read"]
        bad = system_bad.driver_profiles()["disk_read"]
        assert bad.mean_latency() > good.mean_latency()


class TestPacketLoss:
    def make_pair(self, loss_rate):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        a = TcpEndpoint("a", k, ack_immediately=True)
        b = TcpEndpoint("b", k, ack_immediately=True)
        conn = TcpConnection(k, a, b, loss_rate=loss_rate)
        return k, a, b, conn

    def test_lost_segments_retransmitted(self):
        k, a, b, conn = self.make_pair(loss_rate=0.4)
        received = []
        b.on_receive = lambda p: received.append(p.describe)
        for i in range(40):
            a.send(100, f"seg{i}")
        k.run(until=seconds(10.0))
        assert len(received) == 40
        assert conn.packets_lost > 0
        assert conn.retransmissions >= conn.packets_lost

    def test_retransmission_adds_rto_latency(self):
        k, a, b, conn = self.make_pair(loss_rate=0.0)
        times = []
        b.on_receive = lambda p: times.append(k.now)
        a.send(100, "clean")
        k.run(until=seconds(2.0))
        clean_latency = times[0]

        k2, a2, b2, conn2 = self.make_pair(loss_rate=0.9)
        times2 = []
        b2.on_receive = lambda p: times2.append(k2.now)
        a2.send(100, "lossy")
        k2.run(until=seconds(30.0))
        assert times2, "eventually delivered"
        assert times2[0] >= clean_latency + conn2.rto

    def test_acks_never_dropped(self):
        # Simplification: only data segments are subject to loss, so
        # the ACK clock always catches up.
        k, a, b, conn = self.make_pair(loss_rate=0.5)
        for i in range(20):
            a.send(100, f"seg{i}")
        k.run(until=seconds(20.0))
        assert a.peer_acked_through == 20

    def test_loss_validation(self):
        k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        a = TcpEndpoint("a", k)
        b = TcpEndpoint("b", k)
        with pytest.raises(ValueError):
            TcpConnection(k, a, b, loss_rate=1.0)

    def test_cifs_survives_lossy_network(self):
        from repro.net.mount import build_cifs_mount

        mount = build_cifs_mount(scale=0.005, flavor="linux")
        mount.connection.loss_rate = 0.05
        result = run_grep(mount.client, mount.root)
        assert result.files == mount.tree.files
        assert mount.connection.retransmissions > 0

"""The device-model scenario matrix: registry, CLI, and figure shapes.

Three layers of assurance over :mod:`repro.scenarios`:

* **registry/CLI contract** — ``--list-scenarios`` prints the table and
  exits 0, an unknown ``--scenario`` exits 2 with the full listing in
  the error, and a scenario supplies workload defaults that explicit
  flags override;
* **construction identity** — building the spindle scenario through the
  registry funnel produces byte-for-byte the same capture as a direct
  ``System.build``, proving the scenario path added plumbing, not
  physics;
* **figure-style signatures** — each device model's scenario shows the
  latency shape it exists to produce: the SSD's bimodal write profile
  (program peak + GC peak), RAID-0's queue-split narrowing versus the
  degraded single-member array, and the token bucket's throttle plateau
  far above the SSD's native latency.
"""

import pytest

from repro.analysis.peaks import find_peaks
from repro.cli import main
from repro.core.shard import plan_shards
from repro.scenarios import (SCENARIOS, UnknownScenarioError, build_device,
                             get_scenario, render_scenarios)
from repro.workloads.runner import collect_profiles

from .pinning import digest

REGRESSION_PAIRS = (
    ("ssd-gc", "ssd-gc-worn"),
    ("raid0-stripe", "raid0-degraded"),
    ("throttled-iops", "throttled-iops-tight"),
)


def capture(name: str, *, seed: int = 2006, layer: str = "driver",
            **overrides):
    """One scenario capture at its registry defaults (plus overrides)."""
    scenario = get_scenario(name)
    params = dict(fs_type=scenario.fs_type, scale=scenario.scale,
                  processes=scenario.processes,
                  iterations=scenario.iterations)
    params.update(overrides)
    return collect_profiles(scenario.workload, layer=layer, seed=seed,
                            scenario=name, **params)


# -- registry ---------------------------------------------------------------


def test_registry_names_are_keys():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name


def test_every_regression_variant_has_its_clean_scenario():
    for clean, regression in REGRESSION_PAIRS:
        assert clean in SCENARIOS
        assert regression in SCENARIOS


def test_get_scenario_unknown_lists_the_registry():
    with pytest.raises(UnknownScenarioError) as err:
        get_scenario("warp-drive")
    message = str(err.value)
    for name in SCENARIOS:
        assert name in message


def test_build_device_returns_fresh_instances():
    # Models carry run state (GC counters, token buckets, head
    # positions); sharing one instance across machines would couple
    # runs.  The spindle scenario returns None — the stock default.
    first = build_device("ssd-gc")
    second = build_device("ssd-gc")
    assert first is not second
    assert build_device("spindle-randomread") is None
    assert build_device(None) is None


def test_plan_shards_validates_scenario_before_fanout():
    with pytest.raises(UnknownScenarioError):
        plan_shards("randomread", shards=2, scenario="warp-drive")


def test_plan_shards_threads_scenario_to_every_task():
    tasks = plan_shards("postmark", shards=3, scenario="ssd-gc",
                        iterations=300)
    assert [task.scenario for task in tasks] == ["ssd-gc"] * 3


def test_render_scenarios_lists_every_row():
    table = render_scenarios()
    for name, scenario in SCENARIOS.items():
        assert name in table
        assert scenario.workload in table


# -- CLI contract -----------------------------------------------------------


def test_cli_list_scenarios_exits_zero(capsys):
    assert main(["run", "--list-scenarios"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_unknown_scenario_exits_2_with_listing(capsys):
    assert main(["run", "--scenario", "warp-drive"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'warp-drive'" in err
    for name in SCENARIOS:
        assert name in err


def test_cli_run_without_workload_or_scenario_exits_2(capsys):
    assert main(["run"]) == 2
    assert "give a workload or --scenario" in capsys.readouterr().err


def test_cli_scenario_supplies_workload_defaults(tmp_path):
    # --scenario alone runs the registry workload at registry defaults;
    # the output must byte-match the library-level capture through the
    # shard engine's seed derivation (shards=1).
    out = tmp_path / "ssd.ospb"
    assert main(["run", "--scenario", "ssd-gc", "--layer", "driver",
                 "--seed", "2006", "--format", "binary",
                 "-o", str(out)]) == 0
    from repro.core.shard import collect_sharded
    scenario = get_scenario("ssd-gc")
    expected = collect_sharded(scenario.workload, shards=1, seed=2006,
                               layer="driver", scenario="ssd-gc",
                               processes=scenario.processes,
                               iterations=scenario.iterations)
    assert out.read_bytes() == expected.to_bytes()


def test_cli_explicit_flags_override_scenario_defaults(tmp_path):
    # A tiny --iterations beats the scenario's 1600: far fewer requests.
    out = tmp_path / "small.ospb"
    assert main(["run", "--scenario", "ssd-gc", "--iterations", "200",
                 "--layer", "driver", "--format", "binary",
                 "-o", str(out)]) == 0
    from repro.core.profileset import ProfileSet
    small = ProfileSet.from_bytes(out.read_bytes())
    full = capture("ssd-gc")
    assert small.total_ops() < full.total_ops() / 2


def test_cli_trace_accepts_scenario(capsys):
    assert main(["trace", "--scenario", "ssd-gc", "--iterations", "60",
                 "--requests", "2"]) == 0
    assert "request #" in capsys.readouterr().out


def test_cli_trace_unknown_scenario_exits_2(capsys):
    assert main(["trace", "--scenario", "warp-drive"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


# -- construction identity --------------------------------------------------


def test_spindle_scenario_is_byte_identical_to_direct_build():
    # The dedupe proof: the registry funnel (scenario=None device) and
    # the historical System.build path are the same construction.  The
    # parameters mirror the pinned randomread-ext2-driver capture.
    from repro.system import System
    from repro.workloads.runner import run_named_workload
    via_scenario = collect_profiles(
        "randomread", layer="driver", seed=2006,
        scenario="spindle-randomread", iterations=300, processes=2)
    system = System.build(fs_type="ext2", num_cpus=1, seed=2006,
                          with_timer=False)
    run_named_workload(system, "randomread", seed=2006,
                       iterations=300, processes=2)
    direct = system.driver_profiles()
    assert digest(via_scenario) == digest(direct)


# -- figure-style signatures ------------------------------------------------


@pytest.fixture(scope="module")
def ssd_writes():
    return capture("ssd-gc")["disk_write"]


@pytest.fixture(scope="module")
def raid_reads():
    return capture("raid0-stripe")["disk_read"]


@pytest.fixture(scope="module")
def degraded_reads():
    return capture("raid0-degraded")["disk_read"]


@pytest.fixture(scope="module")
def throttled_reads():
    return capture("throttled-iops")["disk_read"]


def test_ssd_gc_write_profile_is_bimodal(ssd_writes):
    peaks = find_peaks(ssd_writes, min_ops=5)
    assert len(peaks) >= 2, (
        f"expected a program peak and a GC peak, got {peaks}")
    fast, slow = peaks[0], peaks[-1]
    # The GC pause (2.5 ms) sits well over a decade above the 250 us
    # program latency: at least 3 log2 buckets of separation.
    assert slow.apex - fast.apex >= 3
    # The fast mode dominates: GC only fires every gc_period programs.
    assert fast.ops > slow.ops
    assert slow.ops >= 5


def test_ssd_gc_pauses_are_seed_deterministic():
    a = capture("ssd-gc")["disk_write"]
    b = capture("ssd-gc")["disk_write"]
    assert digest_profile(a) == digest_profile(b)


def digest_profile(profile):
    return tuple(sorted(profile.counts().items()))


def test_raid0_narrows_versus_degraded_array(raid_reads, degraded_reads):
    # Queue-split: with two members sharing the load, requests spend
    # less time waiting, so the mean drops and the slow tail thins.
    assert raid_reads.total_ops == degraded_reads.total_ops
    assert raid_reads.mean_latency() < degraded_reads.mean_latency()
    tail = 24  # buckets >= ~10 ms: almost pure queueing
    raid_tail = sum(c for b, c in raid_reads.counts().items()
                    if b >= tail)
    degraded_tail = sum(c for b, c in degraded_reads.counts().items()
                        if b >= tail)
    assert raid_tail < degraded_tail / 2


def test_throttle_plateau_dominates_the_read_profile(throttled_reads):
    # At 60 IOPS the inter-token gap is ~17 ms (bucket 24-25) — orders
    # of magnitude above the SSD's ~55 us native reads (bucket 16).
    counts = dict(throttled_reads.counts())
    modal_bucket = max(counts, key=counts.get)
    assert modal_bucket >= 22, (
        f"throttle plateau missing: modal bucket {modal_bucket}")
    plateau_ops = sum(c for b, c in counts.items() if b >= 21)
    assert plateau_ops > throttled_reads.total_ops / 2


def test_unthrottled_ssd_reads_sit_at_native_latency():
    # Control for the plateau test: the same workload on the same SSD
    # without the token bucket stays at the native read latency.
    from repro.disk.model import SSDModel
    from repro.system import System
    from repro.workloads.runner import run_named_workload
    system = System.build(seed=2006, with_timer=False,
                          device=SSDModel())
    run_named_workload(system, "randomread", seed=2006,
                       processes=6, iterations=400)
    reads = system.driver_profiles()["disk_read"]
    counts = dict(reads.counts())
    modal_bucket = max(counts, key=counts.get)
    assert modal_bucket <= 17


def test_regression_scenarios_shift_their_clean_profiles():
    # Every regression variant moves real probability mass; the gate
    # tests assert the exact thresholds, this pins the direction.
    ops = {"ssd-gc": "disk_write", "raid0-stripe": "disk_read",
           "throttled-iops": "disk_read"}
    for clean_name, regression_name in REGRESSION_PAIRS:
        op = ops[clean_name]
        clean = capture(clean_name)[op]
        regression = capture(regression_name)[op]
        assert regression.mean_latency() > clean.mean_latency(), (
            f"{regression_name} should be slower than {clean_name}")

"""CLI flow for the sampled system view: run → push → top/watch/sql.

``osprof run --sample-interval`` writes the state profile beside the
measured dump without moving a byte of it; ``osprof push --samples``
ships it to a server; ``osprof top --once`` and ``osprof db sql``
read the same rolling window back.
"""

import pytest

from repro.cli import main
from repro.sampling import StateProfile
from repro.service.server import ProfileServer, ProfileService
from repro.warehouse import Warehouse

RUN_ARGS = ["run", "randomread", "--processes", "2",
            "--iterations", "150", "--seed", "9"]


@pytest.fixture
def sampled_dump(tmp_path):
    out = tmp_path / "rr.prof"
    rc = main(RUN_ARGS + ["--sample-interval", "0.0005",
                          "-o", str(out)])
    assert rc == 0
    return out


class TestRunSampled:
    def test_writes_state_profile_beside_dump(self, sampled_dump):
        osps = sampled_dump.with_name(sampled_dump.name + ".osps")
        assert osps.exists()
        sprof = StateProfile.load_path(str(osps))
        assert sprof.total_samples() > 0
        assert sprof.intervals > 0

    def test_measured_dump_byte_identical_to_unsampled_run(
            self, sampled_dump, tmp_path):
        plain = tmp_path / "plain.prof"
        assert main(RUN_ARGS + ["-o", str(plain)]) == 0
        assert plain.read_bytes() == sampled_dump.read_bytes()

    def test_explicit_samples_output_path(self, tmp_path):
        out = tmp_path / "rr.prof"
        osps = tmp_path / "elsewhere.osps"
        rc = main(RUN_ARGS + ["--sample-interval", "0.0005",
                              "-o", str(out),
                              "--samples-output", str(osps)])
        assert rc == 0
        assert osps.exists()

    def test_nonpositive_interval_rejected(self, tmp_path):
        rc = main(RUN_ARGS + ["--sample-interval", "0",
                              "-o", str(tmp_path / "x.prof")])
        assert rc == 2

    def test_sampling_incompatible_with_shards(self, tmp_path):
        rc = main(RUN_ARGS + ["--sample-interval", "0.0005",
                              "--shards", "2",
                              "-o", str(tmp_path / "x.prof")])
        assert rc == 2


@pytest.fixture
def server(tmp_path):
    service = ProfileService(warehouse=Warehouse(tmp_path / "wh"))
    srv = ProfileServer(service)
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestPushTopWatch:
    def endpoint(self, server):
        host, port = server.address
        return f"{host}:{port}"

    def test_push_samples_then_top_once(self, server, sampled_dump,
                                        capsys):
        osps = sampled_dump.with_name(sampled_dump.name + ".osps")
        endpoint = self.endpoint(server)
        assert main(["push", endpoint, "--samples", str(osps)]) == 0
        assert server.service.state_pushes == 1

        assert main(["top", endpoint, "--once", "--lines", "8"]) == 0
        frame = capsys.readouterr().out
        assert "WAIT_SITE" in frame
        assert "sem:i_sem:" in frame
        # Top shows at most the requested rows below the two headers.
        rows = [line for line in frame.splitlines()[2:] if line.strip()]
        assert len(rows) <= 8

    def test_top_once_with_empty_window(self, server, capsys):
        assert main(["top", self.endpoint(server), "--once"]) == 0
        assert "no state samples" in capsys.readouterr().out

    def test_top_rejects_bad_lines(self, server):
        assert main(["top", self.endpoint(server), "--once",
                     "--lines", "0"]) == 2

    def test_push_without_any_source_fails(self, server, capsys):
        assert main(["push", self.endpoint(server)]) == 2
        assert "--samples" in capsys.readouterr().err

    def test_watch_metrics_show_sampler_counters(self, server,
                                                 sampled_dump, capsys):
        osps = sampled_dump.with_name(sampled_dump.name + ".osps")
        endpoint = self.endpoint(server)
        assert main(["push", endpoint, "--samples", str(osps)]) == 0
        assert main(["watch", endpoint, "--once", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "osprof_state_pushes_total 1" in captured.out
        assert "osprof_samples_total" in captured.out
        assert "sampler:" in captured.err

    def test_sql_sample_relation_over_endpoint(self, server,
                                               sampled_dump, capsys):
        osps = sampled_dump.with_name(sampled_dump.name + ".osps")
        endpoint = self.endpoint(server)
        assert main(["push", endpoint, "--samples", str(osps)]) == 0
        rc = main(["db", "sql", "--endpoint", endpoint,
                   "SELECT state, wait_site, count() "
                   "GROUP BY state, wait_site "
                   "ORDER BY count() DESC LIMIT 3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blocked" in out

"""Headline results hold across seeds, not just the default one.

Each case study's qualitative claim is re-checked under three unrelated
seeds — a guard against results that only hold by coincidence of the
default random stream.
"""

import pytest

from repro.system import System
from repro.workloads import (CloneStress, RandomReadConfig,
                             build_source_tree, run_grep,
                             run_random_read)

SEEDS = (101, 202, 303)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_llseek_contention_band(self, seed):
        system = System.build(num_cpus=2, with_timer=False, seed=seed)
        run_random_read(system, RandomReadConfig(processes=2,
                                                 iterations=800))
        llseek = system.fs_profiles()["llseek"]
        contended = sum(c for b, c in llseek.counts().items()
                        if b >= 12)
        rate = contended / llseek.total_ops
        assert 0.08 < rate < 0.5  # paper: ~25%

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clone_bimodality(self, seed):
        from repro.analysis import find_peaks

        system = System.build(num_cpus=2, with_timer=False, seed=seed)
        CloneStress(system).run(processes=4, iterations=600)
        peaks = find_peaks(system.user_profiles()["clone"], min_ops=10)
        assert len(peaks) == 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_grep_four_peak_structure(self, seed):
        system = System.build(with_timer=False, seed=seed)
        root, stats = build_source_tree(system, scale=0.015, seed=seed)
        run_grep(system, root)
        counts = system.fs_profiles()["readdir"].counts()
        eof = sum(c for b, c in counts.items() if b <= 8)
        cached = sum(c for b, c in counts.items() if 9 <= b < 15)
        io = sum(c for b, c in counts.items() if b >= 15)
        assert eof == stats.directories
        assert cached > 0 and io > 0

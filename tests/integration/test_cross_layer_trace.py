"""Cross-layer request tracing through the shared pipeline.

A global :class:`TraceSink` on a built system must see single requests
slicing through multiple instrumented layers — the same request id on
the syscall-layer event and the nested file-system (and, for cache
misses, driver) events.
"""

from repro.core.pipeline import TraceSink
from repro.core.profile import Layer
from repro.system import System
from repro.workloads.randomread import RandomReadConfig, run_random_read


def traced_system():
    system = System.build(fs_type="ext2", seed=2006, with_timer=False)
    trace = TraceSink()
    system.pipeline.add_global_sink(trace)
    return system, trace


class TestCrossLayerTrace:
    def test_requests_slice_through_layers(self):
        system, trace = traced_system()
        run_random_read(system, RandomReadConfig(processes=1,
                                                 iterations=50))
        system.pipeline.flush(final=True)
        requests = trace.requests()
        assert requests
        multi = {rid: events for rid, events in requests.items()
                 if len({e.layer for e in events}) >= 2}
        assert multi, "no request crossed two instrumented layers"
        # Every multi-layer request roots at the syscall layer, and the
        # outermost event always sorts first (depth 0).
        for events in multi.values():
            assert events[0].depth == 0
            assert events[0].layer == Layer.USER

    def test_cache_misses_reach_the_driver(self):
        system, trace = traced_system()
        run_random_read(system, RandomReadConfig(processes=2,
                                                 iterations=200))
        system.pipeline.flush(final=True)
        driver_rids = {e.request_id for events in
                       trace.requests().values() for e in events
                       if e.layer == Layer.DRIVER}
        assert driver_rids, "no disk I/O was attributed to a request"
        # Each driver event's request also has the user-level root.
        requests = trace.requests()
        for rid in driver_rids:
            layers = {e.layer for e in requests[rid]}
            assert Layer.USER in layers
            assert Layer.FILESYSTEM in layers

    def test_tracing_does_not_change_profiles(self):
        # The global sink observes the same event stream the profile
        # sinks consume; attaching it must not move a byte of output.
        plain = System.build(fs_type="ext2", seed=2006, with_timer=False)
        run_random_read(plain, RandomReadConfig(processes=1,
                                                iterations=50))
        baseline = plain.fs_profiles().to_bytes()

        system, _trace = traced_system()
        run_random_read(system, RandomReadConfig(processes=1,
                                                 iterations=50))
        assert system.fs_profiles().to_bytes() == baseline

"""The CI regression gate, end to end, against the committed fixture.

``tests/fixtures/llseek_clean_baseline.ospb`` is the golden clean
capture of the §6.1 random-read scenario.  CI replays exactly this
flow on every push (the ``gate`` job); this test keeps the fixture
honest from inside tier-1, so a simulator change that shifts the clean
distribution fails here first with a pointer to the regeneration tool.
"""

from pathlib import Path

import pytest

from repro.cli import main

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" \
    / "llseek_clean_baseline.ospb"

STALE_HINT = ("committed gate fixture is stale — regenerate with "
              "'PYTHONPATH=src python tools/gen_gate_fixture.py' "
              "and commit the result")


@pytest.fixture
def db(tmp_path):
    db_dir = str(tmp_path / "wh")
    assert main(["db", "baseline", "save", "clean", "--db", db_dir,
                 "--from", str(FIXTURE)]) == 0
    return db_dir


def capture(tmp_path, name, processes, seed):
    path = tmp_path / name
    assert main(["run", "randomread", "--processes", str(processes),
                 "--iterations", "800", "--seed", str(seed),
                 "--format", "binary", "-o", str(path)]) == 0
    return str(path)


def test_fixture_matches_regeneration_pins(tmp_path):
    # The fixture is byte-reproducible from its pinned command line.
    from tools.gen_gate_fixture import CAPTURE_ARGS
    fresh = tmp_path / "regen.ospb"
    assert main(CAPTURE_ARGS + ["-o", str(fresh)]) == 0
    assert fresh.read_bytes() == FIXTURE.read_bytes(), STALE_HINT


def test_identical_workload_passes(tmp_path, db, capsys):
    fresh = capture(tmp_path, "fresh.ospb", processes=1, seed=2026)
    rc = main(["db", "gate", fresh, "--db", db, "--baseline", "clean"])
    assert rc == 0, STALE_HINT
    assert "gate: PASS" in capsys.readouterr().out


def test_contended_capture_breaches(tmp_path, db, capsys):
    contended = capture(tmp_path, "contended.ospb", processes=2,
                        seed=2026)
    rc = main(["db", "gate", contended, "--db", db,
               "--baseline", "clean"])
    assert rc == 3
    out = capsys.readouterr().out
    assert "BREACH llseek" in out
    assert "gate: FAIL" in out

"""Byte-identity pins: the pipeline refactor must not move a single bit.

Every capture in :mod:`pinning` is re-run through the current
instrumentation stack and its canonical binary encoding compared against
the sha256 recorded from the pre-refactor per-sample capture path.  A
mismatch means the probe/event pipeline changed *what* is measured, not
just *how* it is plumbed.
"""

import json
from pathlib import Path

import pytest

from .pinning import CAPTURES, digest

PINS = json.loads(
    (Path(__file__).parent / "profile_pins.json").read_text())


def test_every_capture_is_pinned():
    assert sorted(PINS) == sorted(CAPTURES)


@pytest.mark.parametrize("name", sorted(CAPTURES))
def test_profile_bytes_match_pre_refactor_capture(name):
    pset = CAPTURES[name]()
    assert digest(pset) == PINS[name], (
        f"capture {name!r} no longer byte-identical to the pre-refactor "
        f"profile — the pipeline changed measured values, not just plumbing")

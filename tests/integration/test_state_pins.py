"""Digest pins for the sampled system view.

Two invariants, both byte-level:

* sampled captures are deterministic — a fixed (seed, interval) run
  reproduces the pinned StateProfile sha256 exactly, so CI can treat
  the sampled view like any other pinned artifact;
* sampling is free of observer effects — arming the sampler must
  reproduce the *measured* pin from ``profile_pins.json`` untouched.
"""

import json
from pathlib import Path

import pytest

from .pinning import (SAMPLED_MEASURED_PIN, STATE_CAPTURES,
                      _capture_sampled_layers, state_digest)

STATE_PINS = json.loads(
    (Path(__file__).parent / "state_pins.json").read_text())
MEASURED_PINS = json.loads(
    (Path(__file__).parent / "profile_pins.json").read_text())


def test_every_state_capture_is_pinned():
    assert sorted(STATE_PINS) == sorted(STATE_CAPTURES)


@pytest.mark.parametrize("name", sorted(STATE_CAPTURES))
def test_state_profile_bytes_match_pin(name):
    sprof = STATE_CAPTURES[name]()
    assert state_digest(sprof) == STATE_PINS[name], (
        f"sampled capture {name!r} no longer byte-identical to its pin "
        f"— the sampler's view of the simulation changed")


def test_measured_pin_survives_sampler_armed():
    """The zero-observer-effect criterion, against the committed pin.

    The fs-layer digest of the randomread capture was pinned with no
    sampler in the build; re-capturing it with the sampler ticking
    every half millisecond must reproduce the identical sha256.
    """
    from .pinning import digest
    pset = _capture_sampled_layers("randomread", "fs", processes=2,
                                   iterations=300)
    assert digest(pset) == MEASURED_PINS[SAMPLED_MEASURED_PIN], (
        "arming the wait-state sampler changed the measured profile "
        "bytes — the sampler is supposed to be a pure observer")

"""The fault matrix: every armed site either heals or degrades loudly.

The contract under test, end to end: whatever fault fires, the merged
profile a consumer finally sees is **byte-identical** to a fault-free
run, or it carries an explicit ``degraded`` marker — never silently
wrong, never silently short.

The fault plan seed comes from ``OSPROF_FAULT_SEED`` (default 2006) so
CI can sweep seeds while any failure stays reproducible from the seed
in its command line.
"""

import os
import socket
import time

import pytest

from repro.core.faults import FaultingSink, FaultPlan, FaultPoint
from repro.core.pipeline import FanoutSink, Pipeline, ProfileSink
from repro.core.profile import Layer
from repro.core.profileset import ProfileSet
from repro.core.shard import DEGRADED_ATTRIBUTE, collect_sharded
from repro.service.client import Backoff, ResilientServiceClient
from repro.service.server import ProfileServer, ProfileService, ServiceConfig

SEED = int(os.environ.get("OSPROF_FAULT_SEED", "2006"))

SHARD_KWARGS = dict(shards=2, seed=SEED, iterations=60, processes=1)


def plan(*points):
    return FaultPlan(points, seed=SEED)


def pset(latency=100.0, ops=20):
    return ProfileSet.from_operation_latencies({"read": [latency] * ops})


@pytest.fixture
def server():
    srv = ProfileServer(ProfileService(ServiceConfig(segment_seconds=3600.0)))
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    srv.server_close()


def resilient(host, port, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff", Backoff(base=0.001))
    kwargs.setdefault("sleep", lambda seconds: None)
    return ResilientServiceClient(host, port, **kwargs)


class TestShardFaultMatrix:
    """Faults inside the collection engine heal to byte-identical merges."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return collect_sharded("zerobyte", workers=1,
                               **SHARD_KWARGS).to_bytes()

    HEALING_CASES = [
        pytest.param(FaultPoint("shard.worker", "crash", key="shard:0"),
                     1, None, id="worker-crash-serial"),
        pytest.param(FaultPoint("shard.worker", "crash", key="shard:1"),
                     2, None, id="worker-crash-pooled"),
        pytest.param(FaultPoint("shard.worker", "hang", key="shard:0",
                                seconds=30.0),
                     2, 2.0, id="worker-hang-pooled"),
        pytest.param(FaultPoint("shard.worker", "delay", key="shard:1",
                                seconds=0.01),
                     1, None, id="worker-delay-serial"),
        pytest.param(FaultPoint("shard.payload", "corrupt", key="shard:0",
                                mode="flip"),
                     1, None, id="payload-bitflip-serial"),
        pytest.param(FaultPoint("shard.payload", "corrupt", key="shard:1",
                                mode="truncate"),
                     2, None, id="payload-truncate-pooled"),
    ]

    @pytest.mark.parametrize("point,workers,deadline", HEALING_CASES)
    def test_single_fault_heals_byte_identically(self, baseline, point,
                                                 workers, deadline):
        healed = collect_sharded("zerobyte", workers=workers,
                                 deadline=deadline, fault_plan=plan(point),
                                 **SHARD_KWARGS)
        assert healed.to_bytes() == baseline

    def test_two_simultaneous_faults_heal(self, baseline):
        armed = plan(
            FaultPoint("shard.worker", "crash", key="shard:0"),
            FaultPoint("shard.payload", "corrupt", key="shard:1"))
        healed = collect_sharded("zerobyte", workers=1, fault_plan=armed,
                                 **SHARD_KWARGS)
        assert healed.to_bytes() == baseline

    def test_unhealable_fault_degrades_never_lies(self, baseline):
        armed = plan(FaultPoint("shard.worker", "crash", key="shard:1",
                                attempts=()))
        partial = collect_sharded("zerobyte", workers=1, fault_plan=armed,
                                  max_retries=1, salvage=True,
                                  **SHARD_KWARGS)
        assert partial.attributes[DEGRADED_ATTRIBUTE] == "shards:1"
        assert partial.to_bytes() != baseline
        assert not partial.verify_checksums()


class TestClientFaultMatrix:
    """Wire faults between collector and service heal via resend + dedup."""

    CASES = [
        pytest.param(FaultPoint("client.connect", "error"),
                     id="connect-refused"),
        pytest.param(FaultPoint("client.connect", "delay", seconds=0.01),
                     id="connect-slow"),
        pytest.param(FaultPoint("client.send", "error"),
                     id="send-reset"),
        pytest.param(FaultPoint("client.send", "corrupt", mode="tail"),
                     id="send-corrupted-in-transit"),
        pytest.param(FaultPoint("client.recv", "error"),
                     id="reply-lost"),
    ]

    @pytest.mark.parametrize("point", CASES)
    def test_faulted_pushes_reach_server_exactly_once(self, server, point):
        host, port = server.address
        with resilient(host, port, fault_plan=plan(point)) as client:
            client.push(pset(latency=100.0))
            client.push(pset(latency=400.0))
        service = server.service
        deadline = time.monotonic() + 5.0
        while (service.ingest_requests < 2
                and time.monotonic() < deadline):
            time.sleep(0.01)
        snap = service.snapshot()
        assert snap["read"].total_ops == 40  # exactly once, never twice
        fault_free = ProfileSet()
        fault_free.merge(pset(latency=100.0))
        fault_free.merge(pset(latency=400.0))
        assert snap["read"].counts() == fault_free["read"].counts()

    def test_lost_reply_resend_is_deduplicated(self, server):
        # The reply to a merged push dies on the wire; the client must
        # resend the same sequence and the ledger must absorb it.
        host, port = server.address
        point = FaultPoint("client.recv", "error", attempts=(0,))
        with resilient(host, port, fault_plan=plan(point)) as client:
            client.push(pset())
            assert client.reconnects >= 1
        service = server.service
        deadline = time.monotonic() + 5.0
        while (service.ingest_duplicates == 0
                and time.monotonic() < deadline):
            time.sleep(0.01)
        assert service.ingest_duplicates == 1
        assert service.snapshot()["read"].total_ops == 20  # single copy


class TestSinkFaultMatrix:
    """A faulting consumer degrades itself, never its neighbors."""

    def run_pipeline(self, fault_plan):
        pset_out = ProfileSet(name="t")
        faulty = FaultingSink(fault_plan)
        fan = FanoutSink([faulty, ProfileSink(pset_out)])
        pipeline = Pipeline()
        probe = pipeline.probe(Layer.FILESYSTEM, fan)
        for latency in (100.0, 200.0, 400.0):
            probe.record("read", latency)
        pipeline.flush(final=True)
        return pset_out, fan

    def test_sink_fault_drops_nothing_for_healthy_sinks(self):
        armed = plan(FaultPoint("sink.consume", "error", attempts=()))
        damaged, fan = self.run_pipeline(armed)
        clean, _ = self.run_pipeline(FaultPlan())
        assert damaged.to_bytes() == clean.to_bytes()
        assert fan.degraded()
        assert fan.metrics()["osprof_sink_errors_total"] >= 1
        assert fan.metrics()["osprof_sinks_degraded"] == 1

    def test_fault_free_pipeline_reports_healthy(self):
        _, fan = self.run_pipeline(FaultPlan())
        assert not fan.degraded()
        assert fan.metrics()["osprof_sink_errors_total"] == 0


class TestRelayFaultMatrix:
    """Wire faults on the leaf→root hop heal — or degrade loudly.

    The relay forwards with a full :class:`ResilientServiceClient`, so
    the same fault sites collectors face downstream are armable on the
    upstream hop.  The contract does not change at the middle of the
    tree: whatever fires, the root's merge is byte-identical to a
    fault-free flat merge, or the data stays spooled and the relay says
    so — never silently wrong, never silently short.
    """

    CASES = [
        pytest.param(FaultPoint("client.connect", "error"),
                     id="relay-connect-refused"),
        pytest.param(FaultPoint("client.connect", "delay", seconds=0.01),
                     id="relay-connect-slow"),
        pytest.param(FaultPoint("client.send", "error"),
                     id="relay-send-reset"),
        pytest.param(FaultPoint("client.send", "corrupt", mode="tail"),
                     id="relay-batch-corrupted-in-transit"),
        pytest.param(FaultPoint("client.recv", "error"),
                     id="relay-ack-lost"),
    ]

    def run_tree(self, tmp_path, fault_plan):
        from repro.service.aio_server import AsyncProfileServer
        from repro.service.relay import RelayService

        root_service = ProfileService(ServiceConfig(segment_seconds=3600.0))
        root = AsyncProfileServer(root_service)
        root.serve_in_thread()
        relay = RelayService(
            tmp_path / "leaf", upstream=root.address, batch=2,
            retries=3, backoff=Backoff(base=0.001),
            sleep=lambda seconds: None, fault_plan=fault_plan)
        try:
            segments = [pset(latency=100.0 * (i + 1), ops=10)
                        for i in range(4)]
            for i, segment in enumerate(segments):
                relay.accept_sequenced("c1", i + 1, segment.to_bytes())
            try:
                relay.forward()
            except Exception:
                pass  # judged below: spool must still hold the data
            expected = ProfileSet.merged(segments)
            return relay, root_service, expected
        finally:
            relay.close()
            root.server_close()

    @pytest.mark.parametrize("point", CASES)
    def test_forward_heals_byte_identically(self, tmp_path, point):
        relay, root_service, expected = self.run_tree(
            tmp_path, plan(point))
        assert relay.pending_entries() == []
        assert root_service.snapshot().to_bytes() == expected.to_bytes()

    def test_lost_ack_replay_deduplicated_at_root(self, tmp_path):
        point = FaultPoint("client.recv", "error", attempts=(0,))
        relay, root_service, expected = self.run_tree(
            tmp_path, plan(point))
        assert root_service.snapshot().to_bytes() == expected.to_bytes()
        assert root_service.ingest_duplicates >= 1  # replay was absorbed

    def test_dead_upstream_degrades_never_lies(self, tmp_path):
        # Every attempt fails: the batch must stay spooled, counted,
        # and replayable — not half-delivered, not dropped.
        point = FaultPoint("client.connect", "error", attempts=())
        relay, root_service, expected = self.run_tree(
            tmp_path, plan(point))
        assert len(relay.pending_entries()) == 4
        assert relay.forward_errors >= 1
        assert root_service.snapshot().to_bytes() != expected.to_bytes()
        metrics = relay.metrics_text()
        assert "osprof_relay_spool_pending 4" in metrics


class TestKillServerMidPush:
    """The acceptance e2e: spool drains to zero loss across a restart."""

    def test_spool_survives_restart_with_zero_loss(self, tmp_path):
        first = ProfileServer(ProfileService(
            ServiceConfig(segment_seconds=3600.0)))
        first.serve_in_thread()
        host, port = first.address
        client = resilient(host, port, retries=1,
                           spool_dir=str(tmp_path / "spool"))
        segments = [pset(latency=100.0 * (i + 1), ops=10 * (i + 1))
                    for i in range(4)]

        assert "seq 1" in client.push(segments[0])  # delivered live
        client.close()
        first.drain(timeout=5.0)
        first.server_close()

        for segment in segments[1:]:
            status = client.push(segment)  # server is gone: spooled
            assert "spooled" in status
        assert len(client.spool) == 3

        second_service = ProfileService(
            ServiceConfig(segment_seconds=3600.0))
        second = ProfileServer(second_service, host=host, port=port)
        second.serve_in_thread()
        try:
            delivered = client.drain()
            assert delivered == 3
            assert len(client.spool) == 0
            expected = ProfileSet()
            for segment in segments[1:]:
                expected.merge(segment)
            snap = second_service.snapshot()
            assert snap["read"].total_ops == \
                expected["read"].total_ops  # zero loss
            assert snap["read"].counts() == expected["read"].counts()
        finally:
            client.close()
            second.shutdown()
            second.server_close()

    def test_redelivery_after_lost_ack_cannot_double_merge(self, tmp_path):
        # Crash the client after the server merged but before the spool
        # entry was removed: the restarted client redelivers, and the
        # ledger (same persisted client id) absorbs the duplicate.
        server = ProfileServer(ProfileService(
            ServiceConfig(segment_seconds=3600.0)))
        server.serve_in_thread()
        host, port = server.address
        spool_dir = str(tmp_path / "spool")
        try:
            client = resilient(host, port, spool_dir=spool_dir)
            client.push(pset())
            client.close()
            # Simulate the torn state: the payload file reappears.
            reborn = resilient(host, port, spool_dir=spool_dir)
            assert reborn.spool is not None
            seq = reborn.spool.append(pset().to_bytes())
            # Overwrite with seq 1's identity by rewriting the ledger
            # path: redeliver under the *same* already-merged sequence.
            reborn.spool.remove(seq)
            path = reborn.spool._path(1)
            path.write_bytes(pset().to_bytes())
            assert reborn.drain() == 1
            reborn.close()
            assert server.service.ingest_duplicates == 1
            assert server.service.snapshot()["read"].total_ops == 20
        finally:
            server.shutdown()
            server.server_close()


class TestDeviceServiceFaults:
    """The ``device.service`` site through the new device models.

    A media error on an SSD or a RAID member takes the same
    transparent-retry path organic ``error_rate`` failures take: a
    matched attempt re-queues the request with one retry's worth of
    added latency, and only retry exhaustion surfaces ``failed``.
    """

    @staticmethod
    def run_one(model, fault_plan, *, is_write=False, max_retries=3):
        from repro.disk.device import Disk
        from repro.sim.scheduler import Kernel
        kernel = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
        disk = Disk(kernel, model=model, fault_plan=fault_plan,
                    max_retries=max_retries)
        request = disk.submit(100, is_write=is_write)
        kernel.run(max_events=200)
        return disk, request

    def test_ssd_write_media_error_heals_via_retry(self):
        from repro.disk.model import SSDModel
        disk, request = self.run_one(
            SSDModel(),
            plan(FaultPoint(site="device.service", kind="error",
                            key="write")),
            is_write=True)
        assert request.completed_at > 0
        assert not request.failed
        assert request.retries == 1
        assert disk.retries_performed == 1
        assert disk.media_errors == 1

    def test_raid_read_media_error_heals_via_retry(self):
        from repro.disk.model import RAID0Model
        disk, request = self.run_one(
            RAID0Model(num_children=2),
            plan(FaultPoint(site="device.service", kind="error",
                            key="read")))
        assert request.completed_at > 0
        assert not request.failed
        assert request.retries == 1
        assert disk.retries_performed == 1

    def test_read_fault_key_does_not_touch_writes(self):
        from repro.disk.model import SSDModel
        disk, request = self.run_one(
            SSDModel(),
            plan(FaultPoint(site="device.service", kind="error",
                            key="read")),
            is_write=True)
        assert not request.failed
        assert request.retries == 0
        assert disk.media_errors == 0

    def test_every_attempt_faulted_exhausts_retries(self):
        from repro.disk.model import SSDModel
        disk, request = self.run_one(
            SSDModel(),
            plan(FaultPoint(site="device.service", kind="error",
                            key="write", attempts=())),
            is_write=True, max_retries=2)
        assert request.failed
        assert request.completed_at > 0   # completion still fires
        assert request.retries == 2
        assert disk.media_errors == 3     # initial attempt + 2 retries

    def test_faulted_retry_costs_extra_service_time(self):
        from repro.disk.model import SSDModel
        _, clean = self.run_one(SSDModel(), None, is_write=True)
        _, faulted = self.run_one(
            SSDModel(),
            plan(FaultPoint(site="device.service", kind="error",
                            key="write")),
            is_write=True)
        clean_latency = clean.completed_at - clean.submitted_at
        faulted_latency = faulted.completed_at - faulted.submitted_at
        assert faulted_latency > clean_latency * 1.5

"""Shared capture matrix for the pipeline-refactor byte-identity pins.

The probe/event pipeline refactor must not change a single byte of any
captured :class:`~repro.core.profileset.ProfileSet`: batching only
defers histogram insertion, and both ``total_latency`` (an exact float
expansion) and the canonical binary encoding are order-independent, so
the digests below are invariant under any correct reorganisation of the
capture plumbing.

``CAPTURES`` maps a pin name to a zero-argument callable returning a
ProfileSet.  ``tools/gen_profile_pins.py`` runs every capture and writes
the sha256 of ``to_bytes()`` into ``profile_pins.json``;
``test_profile_pins.py`` re-runs them and compares.  The pinned digests
were generated from the pre-refactor per-sample capture path.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

from repro.core.profileset import ProfileSet
from repro.net.mount import build_cifs_mount, build_nfs_mount
from repro.scenarios import SCENARIOS
from repro.system import System
from repro.workloads import run_grep
from repro.workloads.runner import collect_profiles, run_named_workload

#: (workload, fs_type, kwargs for run_named_workload)
_SYSTEM_RUNS = (
    ("randomread", "ext2", dict(iterations=300, processes=2)),
    ("zerobyte", "ext2", dict(iterations=300, processes=2)),
    ("clone", "ext2", dict(iterations=200, processes=2)),
    ("postmark", "ext2", dict(iterations=400)),
    ("grep", "ext2", dict(scale=0.02)),
    ("grep", "reiserfs", dict(scale=0.02)),
)

LAYERS = ("user", "fs", "driver")


def _capture_system(workload: str, fs_type: str, kwargs, layer: str):
    system = System.build(fs_type=fs_type, num_cpus=1, seed=2006,
                          with_timer=False)
    run_named_workload(system, workload, seed=2006, **kwargs)
    return {"user": system.user_profiles,
            "fs": system.fs_profiles,
            "driver": system.driver_profiles}[layer]()


def _capture_cifs(flavor: str) -> ProfileSet:
    mount = build_cifs_mount(scale=0.02, flavor=flavor, delayed_ack=True)
    run_grep(mount.client, mount.root)
    return mount.client.fs_profiles()


def _capture_nfs() -> ProfileSet:
    mount = build_nfs_mount(scale=0.02)
    run_grep(mount.client, mount.root)
    return mount.client.fs_profiles()


def _capture_scenario(name: str) -> ProfileSet:
    """One scenario's driver-layer capture at its registry defaults.

    Runs through the same :func:`collect_profiles` funnel as ``osprof
    run``, so these pins freeze both the device model's physics and the
    registry's workload parameters.
    """
    scenario = SCENARIOS[name]
    return collect_profiles(scenario.workload, layer="driver",
                            scenario=name, seed=2006,
                            fs_type=scenario.fs_type,
                            scale=scenario.scale,
                            processes=scenario.processes,
                            iterations=scenario.iterations)


def _system_captures() -> Dict[str, Callable[[], ProfileSet]]:
    captures: Dict[str, Callable[[], ProfileSet]] = {}
    for workload, fs_type, kwargs in _SYSTEM_RUNS:
        for layer in LAYERS:
            name = f"{workload}-{fs_type}-{layer}"
            captures[name] = (
                lambda w=workload, f=fs_type, k=kwargs, l=layer:
                _capture_system(w, f, k, l))
    return captures


def _scenario_captures() -> Dict[str, Callable[[], ProfileSet]]:
    return {f"scenario-{name}": (lambda n=name: _capture_scenario(n))
            for name in sorted(SCENARIOS)}


CAPTURES: Dict[str, Callable[[], ProfileSet]] = {
    **_system_captures(),
    **_scenario_captures(),
    "grep-cifs-windows-fs": lambda: _capture_cifs("windows"),
    "grep-cifs-linux-fs": lambda: _capture_cifs("linux"),
    "grep-nfs-fs": _capture_nfs,
}


def digest(pset: ProfileSet) -> str:
    """The pinned fingerprint: sha256 of the canonical binary encoding."""
    return hashlib.sha256(pset.to_bytes()).hexdigest()

"""Shared capture matrix for the pipeline-refactor byte-identity pins.

The probe/event pipeline refactor must not change a single byte of any
captured :class:`~repro.core.profileset.ProfileSet`: batching only
defers histogram insertion, and both ``total_latency`` (an exact float
expansion) and the canonical binary encoding are order-independent, so
the digests below are invariant under any correct reorganisation of the
capture plumbing.

``CAPTURES`` maps a pin name to a zero-argument callable returning a
ProfileSet.  ``tools/gen_profile_pins.py`` runs every capture and writes
the sha256 of ``to_bytes()`` into ``profile_pins.json``;
``test_profile_pins.py`` re-runs them and compares.  The pinned digests
were generated from the pre-refactor per-sample capture path.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

from repro.core.profileset import ProfileSet
from repro.net.mount import build_cifs_mount, build_nfs_mount
from repro.scenarios import SCENARIOS
from repro.system import System
from repro.workloads import run_grep
from repro.workloads.runner import collect_profiles, run_named_workload

#: (workload, fs_type, kwargs for run_named_workload)
_SYSTEM_RUNS = (
    ("randomread", "ext2", dict(iterations=300, processes=2)),
    ("zerobyte", "ext2", dict(iterations=300, processes=2)),
    ("clone", "ext2", dict(iterations=200, processes=2)),
    ("postmark", "ext2", dict(iterations=400)),
    ("grep", "ext2", dict(scale=0.02)),
    ("grep", "reiserfs", dict(scale=0.02)),
)

LAYERS = ("user", "fs", "driver")


def _capture_system(workload: str, fs_type: str, kwargs, layer: str):
    system = System.build(fs_type=fs_type, num_cpus=1, seed=2006,
                          with_timer=False)
    run_named_workload(system, workload, seed=2006, **kwargs)
    return {"user": system.user_profiles,
            "fs": system.fs_profiles,
            "driver": system.driver_profiles}[layer]()


def _capture_cifs(flavor: str) -> ProfileSet:
    mount = build_cifs_mount(scale=0.02, flavor=flavor, delayed_ack=True)
    run_grep(mount.client, mount.root)
    return mount.client.fs_profiles()


def _capture_nfs() -> ProfileSet:
    mount = build_nfs_mount(scale=0.02)
    run_grep(mount.client, mount.root)
    return mount.client.fs_profiles()


def _capture_scenario(name: str) -> ProfileSet:
    """One scenario's driver-layer capture at its registry defaults.

    Runs through the same :func:`collect_profiles` funnel as ``osprof
    run``, so these pins freeze both the device model's physics and the
    registry's workload parameters.
    """
    scenario = SCENARIOS[name]
    return collect_profiles(scenario.workload, layer="driver",
                            scenario=name, seed=2006,
                            fs_type=scenario.fs_type,
                            scale=scenario.scale,
                            processes=scenario.processes,
                            iterations=scenario.iterations)


def _system_captures() -> Dict[str, Callable[[], ProfileSet]]:
    captures: Dict[str, Callable[[], ProfileSet]] = {}
    for workload, fs_type, kwargs in _SYSTEM_RUNS:
        for layer in LAYERS:
            name = f"{workload}-{fs_type}-{layer}"
            captures[name] = (
                lambda w=workload, f=fs_type, k=kwargs, l=layer:
                _capture_system(w, f, k, l))
    return captures


def _scenario_captures() -> Dict[str, Callable[[], ProfileSet]]:
    return {f"scenario-{name}": (lambda n=name: _capture_scenario(n))
            for name in sorted(SCENARIOS)}


CAPTURES: Dict[str, Callable[[], ProfileSet]] = {
    **_system_captures(),
    **_scenario_captures(),
    "grep-cifs-windows-fs": lambda: _capture_cifs("windows"),
    "grep-cifs-linux-fs": lambda: _capture_cifs("linux"),
    "grep-nfs-fs": _capture_nfs,
}


def digest(pset: ProfileSet) -> str:
    """The pinned fingerprint: sha256 of the canonical binary encoding."""
    return hashlib.sha256(pset.to_bytes()).hexdigest()


# -- wait-state sample pins ---------------------------------------------------
#
# The sampler is deterministic under a fixed seed (sim-clock ticks, no
# RNG draws, no wall-clock in the profile bytes), so sampled captures
# pin by digest exactly like measured ones.  ``STATE_SAMPLE_INTERVAL``
# is in cycles: 0.5 ms of simulated time at the paper's 1.7 GHz.

STATE_SAMPLE_INTERVAL = 0.0005 * 1.7e9

#: The measured-side pin a sampled run must leave untouched: arming the
#: sampler on the ``randomread-ext2`` capture must reproduce this
#: exact measured digest (checked by ``test_state_pins.py``).
SAMPLED_MEASURED_PIN = "randomread-ext2-fs"


def _capture_sampled(workload: str, processes: int, iterations: int,
                     scenario=None):
    from repro.workloads.runner import collect_sampled_run
    _layers, sprof, _metrics = collect_sampled_run(
        workload, state_sample_interval=STATE_SAMPLE_INTERVAL,
        seed=2006, processes=processes, iterations=iterations,
        scenario=scenario)
    return sprof


def _capture_sampled_layers(workload: str, layer: str, processes: int,
                            iterations: int):
    from repro.workloads.runner import collect_sampled_run
    layers, _sprof, _metrics = collect_sampled_run(
        workload, state_sample_interval=STATE_SAMPLE_INTERVAL,
        seed=2006, processes=processes, iterations=iterations)
    return layers[layer]


#: Pin name -> zero-argument callable returning a StateProfile.
STATE_CAPTURES = {
    "randomread-ext2-sampled":
        lambda: _capture_sampled("randomread", 2, 300),
    "randomread-single-sampled":
        lambda: _capture_sampled("randomread", 1, 300),
    "scenario-throttled-iops-sampled":
        lambda: _capture_sampled("randomread", 6, 400,
                                 scenario="throttled-iops"),
}


def state_digest(sprof) -> str:
    """sha256 of the canonical StateProfile encoding."""
    return hashlib.sha256(sprof.to_bytes()).hexdigest()

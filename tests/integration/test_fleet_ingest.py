"""Fleet-scale soak: 1k+ pushers through a two-level aggregation tree.

The north-star deployment: a root service fed by leaf relays, each leaf
absorbing hundreds of collectors over the event-loop transport.  The
test the whole PR hangs on is byte-identity — after every push has
settled through spools, batch merges and idempotent forwarding, the
root's merged profile must equal ``ProfileSet.merged`` over every raw
client segment, in one flat merge, to the byte.  That must hold on the
happy path, under duplicate replays, and across an injected leaf crash
and restart whose spool drains losslessly.
"""

import threading

import pytest

from repro.core.profileset import ProfileSet
from repro.service.aio_server import AsyncProfileServer
from repro.service.client import ServiceClient
from repro.service.relay import RelayServer, RelayService
from repro.service.server import ProfileService, ServiceConfig

N_CLIENTS = 1056          # > 1k simulated pushers
SEGMENTS_PER_CLIENT = 2   # one per phase, crash between phases
CONNECTIONS_PER_LEAF = 8  # pushers multiplex over a few sockets


def client_segment(client, seq):
    """The deterministic segment pusher *client* sends as push *seq*."""
    base = client * 31 + seq * 7
    return ProfileSet.from_operation_latencies(
        {"read": [120 + base + i * 3 for i in range(6)],
         "write": [5200 + base + i * 11 for i in range(3)]})


def push_phase(address, clients, seq, failures):
    """Push one segment per client, multiplexed over a few sockets."""
    host, port = address
    groups = [clients[i::CONNECTIONS_PER_LEAF]
              for i in range(CONNECTIONS_PER_LEAF)]

    def worker(group):
        try:
            with ServiceClient(host, port) as conn:
                for client in group:
                    status = conn.push_sequenced(
                        f"client-{client}", seq,
                        client_segment(client, seq).to_bytes())
                    assert "relayed" in status or "duplicate" in status
        except Exception as exc:  # noqa: BLE001 - collected for the test
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(group,))
               for group in groups if group]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)


def expected_flat_merge():
    return ProfileSet.merged(
        client_segment(c, s)
        for c in range(N_CLIENTS)
        for s in range(1, SEGMENTS_PER_CLIENT + 1))


@pytest.fixture()
def tree_root():
    service = ProfileService(config=ServiceConfig(segment_seconds=1e9,
                                                  max_pending=64))
    server = AsyncProfileServer(service)
    server.serve_in_thread()
    yield service, server
    server.server_close()


def make_leaf(tmp_path, name, upstream, flush_interval):
    relay = RelayService(tmp_path / name, upstream=upstream, batch=64,
                         config=ServiceConfig(max_pending=64),
                         sleep=lambda s: None)
    server = RelayServer(relay, flush_interval=flush_interval)
    server.serve_in_thread()
    return relay, server


class TestFleetIngest:

    def test_thousand_pushers_merge_byte_identically(self, tmp_path,
                                                     tree_root):
        root_service, root_server = tree_root
        leaves = [make_leaf(tmp_path, f"leaf{i}", root_server.address,
                            flush_interval=0.05) for i in range(2)]
        try:
            failures = []
            halves = [list(range(0, N_CLIENTS, 2)),
                      list(range(1, N_CLIENTS, 2))]
            for seq in range(1, SEGMENTS_PER_CLIENT + 1):
                phases = []
                for (relay, server), clients in zip(leaves, halves):
                    thread = threading.Thread(
                        target=push_phase,
                        args=(server.address, clients, seq, failures))
                    thread.start()
                    phases.append(thread)
                for thread in phases:
                    thread.join(timeout=120.0)
            assert failures == []

            # Replay a sample of already-acked pushes: the tree must
            # absorb duplicates without changing the merge.
            host, port = leaves[0][1].address
            with ServiceClient(host, port) as conn:
                for client in halves[0][:25]:
                    status = conn.push_sequenced(
                        f"client-{client}", 1,
                        client_segment(client, 1).to_bytes())
                    assert "duplicate" in status

            for relay, server in leaves:
                assert server.drain(timeout=30.0)
                assert relay.pending_entries() == []
            snap = root_service.snapshot()
            assert snap.to_bytes() == expected_flat_merge().to_bytes()
            # The tree collapsed >2k pushes into a few dozen upstream
            # batches — that is what lets the root absorb a fleet.
            assert root_service.ingest_requests < N_CLIENTS
        finally:
            for _, server in leaves:
                server.server_close()

    def test_leaf_crash_and_restart_is_lossless(self, tmp_path,
                                                tree_root):
        root_service, root_server = tree_root
        # The crashing leaf runs WITHOUT a forwarder: everything it
        # acks is still sitting in its spool when it dies, so the
        # restart genuinely has to drain the spool to win.
        crash_relay, crash_server = make_leaf(
            tmp_path, "leaf-crash", root_server.address,
            flush_interval=None)
        steady_relay, steady_server = make_leaf(
            tmp_path, "leaf-steady", root_server.address,
            flush_interval=0.05)
        reborn_server = None
        try:
            failures = []
            crash_clients = list(range(0, N_CLIENTS, 2))
            steady_clients = list(range(1, N_CLIENTS, 2))

            push_phase(crash_server.address, crash_clients, 1, failures)
            push_phase(steady_server.address, steady_clients, 1, failures)
            assert failures == []
            spooled = len(crash_relay.pending_entries())
            assert spooled == len(crash_clients)

            # Crash: abrupt close, no drain, no forward.  Everything
            # acked lives only in the spool + state file.
            crash_server.server_close()

            # Restart on the same directory (new port: the old one may
            # linger in TIME_WAIT).  The spool must survive verbatim.
            reborn_relay = RelayService(
                tmp_path / "leaf-crash", upstream=root_server.address,
                batch=64, config=ServiceConfig(max_pending=64),
                sleep=lambda s: None)
            assert reborn_relay.relay_id == crash_relay.relay_id
            assert len(reborn_relay.pending_entries()) == spooled
            reborn_server = RelayServer(reborn_relay, flush_interval=0.05)
            reborn_server.serve_in_thread()

            # A replayed push from before the crash is still a
            # duplicate: the ledger was rebuilt from the spool scan.
            host, port = reborn_server.address
            with ServiceClient(host, port) as conn:
                status = conn.push_sequenced(
                    f"client-{crash_clients[0]}", 1,
                    client_segment(crash_clients[0], 1).to_bytes())
                assert "duplicate" in status

            push_phase(reborn_server.address, crash_clients, 2, failures)
            push_phase(steady_server.address, steady_clients, 2, failures)
            assert failures == []

            assert reborn_server.drain(timeout=30.0)
            assert steady_server.drain(timeout=30.0)
            assert reborn_relay.pending_entries() == []
            assert steady_relay.pending_entries() == []
            snap = root_service.snapshot()
            assert snap.to_bytes() == expected_flat_merge().to_bytes()
        finally:
            steady_server.server_close()
            if reborn_server is not None:
                reborn_server.server_close()

"""SQL over the wire: the ``SQL``/``TABLE`` frame pair on both transports.

The service is a thin adapter here — flush queued segments, hand the
query to the warehouse engine, JSON the table back.  What needs pinning
is the seams: results match a direct ``execute_sql`` against the same
directory, queued-but-unflushed ingest is visible to a query, every
failure mode (no ``--db``, bad query, missing baseline) arrives as a
clean ``ServiceError``, and both servers speak the same frames.
"""

import threading

import pytest

from repro.core.profileset import ProfileSet
from repro.service.aio_server import AsyncProfileServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (ProfileServer, ProfileService,
                                  ServiceConfig)
from repro.warehouse import Warehouse, execute_sql


def pset(seed=0, ops=20):
    return ProfileSet.from_operation_latencies(
        {"read": [100 + seed * 13 + i * 7 for i in range(ops)],
         "write": [4000 + seed * 5 + i * 11 for i in range(ops // 2)]})


def threaded_server(service):
    server = ProfileServer(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def aio_server(service):
    server = AsyncProfileServer(service)
    server.serve_in_thread()
    return server


@pytest.fixture(params=["threaded", "aio"])
def server_for(request):
    servers = []

    def start(service):
        server = (threaded_server if request.param == "threaded"
                  else aio_server)(service)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.server_close()


def test_sql_matches_direct_execution(tmp_path, server_for):
    wh = Warehouse(tmp_path)
    for epoch in range(3):
        wh.ingest("svc", pset(epoch), epoch=epoch)
    service = ProfileService(warehouse=wh)
    host, port = server_for(service).address
    query = "SELECT op, count(), total_latency() GROUP BY op ORDER BY op"
    with ServiceClient(host, port) as client:
        columns, rows = client.sql(query)
    want = execute_sql(Warehouse(tmp_path), query)
    assert columns == want.columns
    assert rows == want.rows


def test_sql_flushes_queued_segments_first(tmp_path):
    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    service = ProfileService(
        ServiceConfig(segment_seconds=5.0, flush_batch=10),
        clock=clock, warehouse=Warehouse(tmp_path))
    sent = pset(7)
    service.ingest_payload(sent.to_bytes())
    clock.now += 5.0
    service.tick()  # segment closes, but batching keeps it queued
    assert service.warehouse.segments_total == 0
    reply = service.sql("SELECT count()")
    assert reply["rows"] == [[sent.total_ops()]]
    assert service.warehouse.segments_total == 1


@pytest.mark.parametrize("query,needle", [
    ("SELECT nope", "unknown column"),
    ("SELECT op GROUP", "expected"),
    ("SELECT op, emd('ghost') GROUP BY op", "ghost"),
])
def test_bad_queries_are_clean_service_errors(tmp_path, server_for,
                                              query, needle):
    wh = Warehouse(tmp_path)
    wh.ingest("svc", pset())
    service = ProfileService(warehouse=wh)
    host, port = server_for(service).address
    with ServiceClient(host, port) as client:
        with pytest.raises(ServiceError, match=needle):
            client.sql(query)
        # The connection survives the error frame.
        _, rows = client.sql("SELECT count()")
        assert rows[0][0] > 0


def test_sql_without_warehouse_is_an_error(server_for):
    service = ProfileService()
    host, port = server_for(service).address
    with ServiceClient(host, port) as client:
        with pytest.raises(ServiceError, match="--db"):
            client.sql("SELECT count()")


def test_metrics_export_cache_counters(tmp_path, server_for):
    wh = Warehouse(tmp_path)
    wh.ingest("svc", pset())
    service = ProfileService(warehouse=wh)
    host, port = server_for(service).address
    with ServiceClient(host, port) as client:
        client.sql("SELECT count()")
        client.sql("SELECT count()")
        text = client.metrics()
    metrics = dict(line.rsplit(" ", 1)
                   for line in text.splitlines() if " " in line)
    assert int(metrics["osprof_warehouse_cache_misses_total"]) == 1
    assert int(metrics["osprof_warehouse_cache_hits_total"]) >= 1


def test_metrics_cache_counters_default_to_zero_without_warehouse():
    service = ProfileService()
    text = service.metrics_text()
    assert "osprof_warehouse_cache_hits_total 0" in text
    assert "osprof_warehouse_cache_misses_total 0" in text

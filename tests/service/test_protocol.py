"""Tests for the service wire framing."""

import socket
import struct
import threading

import pytest

from repro.service.protocol import (MAGIC, MAX_PAYLOAD, FrameTooLarge,
                                    FrameType, ProtocolError,
                                    decode_json, decode_push_seq,
                                    decode_retry_after, encode_json,
                                    encode_push_seq, encode_retry_after,
                                    recv_frame, send_frame)


def socket_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.PUSH, b"payload bytes")
            ftype, payload = recv_frame(b)
            assert ftype == FrameType.PUSH
            assert payload == b"payload bytes"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.METRICS)
            assert recv_frame(b) == (FrameType.METRICS, b"")
        finally:
            a.close()
            b.close()

    def test_several_frames_on_one_stream(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                send_frame(a, FrameType.OK, bytes([i]) * i)
            for i in range(5):
                assert recv_frame(b) == (FrameType.OK, bytes([i]) * i)
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.OK, b"x")
            a.close()
            assert recv_frame(b) == (FrameType.OK, b"x")
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_bad_magic_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(b"XXXX" + struct.pack("<BI", 1, 0))
            with pytest.raises(ProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_declared_length_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(MAGIC + struct.pack("<BI", 1, MAX_PAYLOAD + 1))
            with pytest.raises(ProtocolError, match="limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(MAGIC + struct.pack("<BI", 1, 100) + b"short")
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_send_rejected_locally(self):
        a, b = socket_pair()
        try:
            class Huge(bytes):
                def __len__(self):
                    return MAX_PAYLOAD + 1
            with pytest.raises(ProtocolError):
                send_frame(a, FrameType.PUSH, Huge())
        finally:
            a.close()
            b.close()

    def test_large_frame_crosses_recv_chunks(self):
        a, b = socket_pair()
        payload = bytes(range(256)) * 2048  # 512 KiB
        received = {}

        def reader():
            received["frame"] = recv_frame(b)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            send_frame(a, FrameType.PROFILE, payload)
            thread.join(timeout=10)
            assert received["frame"] == (FrameType.PROFILE, payload)
        finally:
            a.close()
            b.close()


class TestFrameSizeGuard:
    def test_rejected_from_header_alone_before_payload_exists(self):
        # Only the 9 header bytes are ever sent: if the receiver tried
        # to read (or allocate) the declared payload it would block
        # forever, so raising at all proves the header-only guard.
        a, b = socket_pair()
        try:
            a.sendall(MAGIC + struct.pack("<BI", 1, 1 << 30))
            with pytest.raises(FrameTooLarge):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_custom_receive_limit(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.PUSH, b"x" * 100)
            with pytest.raises(FrameTooLarge, match="64-byte limit"):
                recv_frame(b, max_payload=64)
        finally:
            a.close()
            b.close()

    def test_frame_at_the_limit_passes(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.PUSH, b"x" * 64)
            assert recv_frame(b, max_payload=64) == \
                (FrameType.PUSH, b"x" * 64)
        finally:
            a.close()
            b.close()

    def test_frame_too_large_is_a_protocol_error(self):
        assert issubclass(FrameTooLarge, ProtocolError)


class TestPushSeq:
    def test_round_trip(self):
        blob = encode_push_seq("collector-1", 42, b"profile bytes")
        assert decode_push_seq(blob) == ("collector-1", 42, b"profile bytes")

    def test_empty_profile_allowed(self):
        assert decode_push_seq(encode_push_seq("c", 1, b"")) == ("c", 1, b"")

    def test_rejects_empty_client_id(self):
        with pytest.raises(ProtocolError):
            encode_push_seq("", 1, b"x")

    def test_rejects_zero_sequence(self):
        with pytest.raises(ProtocolError):
            encode_push_seq("c", 0, b"x")

    def test_rejects_truncated_payloads(self):
        with pytest.raises(ProtocolError):
            decode_push_seq(b"\x01")
        blob = encode_push_seq("collector", 1, b"")
        with pytest.raises(ProtocolError):
            decode_push_seq(blob[:12])  # header intact, id cut short


class TestRetryAfter:
    def test_round_trip(self):
        assert decode_retry_after(encode_retry_after(0.25)) == 0.25

    def test_rejects_negative_seconds(self):
        with pytest.raises(ProtocolError):
            encode_retry_after(-1.0)

    def test_rejects_wrong_size_payload(self):
        with pytest.raises(ProtocolError):
            decode_retry_after(b"\x00" * 4)


class TestJson:
    def test_round_trip(self):
        blob = encode_json({"cursor": 3, "alerts": []})
        assert decode_json(blob) == {"cursor": 3, "alerts": []}

    def test_canonical_key_order(self):
        assert encode_json({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}'

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError):
            decode_json(b"{nope")

    def test_bad_utf8_raises(self):
        with pytest.raises(ProtocolError):
            decode_json(b"\xff\xfe")

    def test_frame_type_names(self):
        assert FrameType.name(FrameType.PUSH) == "PUSH"
        assert FrameType.name(0x7F) == "0x7f"

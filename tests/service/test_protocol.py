"""Tests for the service wire framing."""

import socket
import struct
import threading

import pytest

from repro.service.protocol import (MAGIC, MAX_PAYLOAD, FrameType,
                                    ProtocolError, decode_json, encode_json,
                                    recv_frame, send_frame)


def socket_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.PUSH, b"payload bytes")
            ftype, payload = recv_frame(b)
            assert ftype == FrameType.PUSH
            assert payload == b"payload bytes"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.METRICS)
            assert recv_frame(b) == (FrameType.METRICS, b"")
        finally:
            a.close()
            b.close()

    def test_several_frames_on_one_stream(self):
        a, b = socket_pair()
        try:
            for i in range(5):
                send_frame(a, FrameType.OK, bytes([i]) * i)
            for i in range(5):
                assert recv_frame(b) == (FrameType.OK, bytes([i]) * i)
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        try:
            send_frame(a, FrameType.OK, b"x")
            a.close()
            assert recv_frame(b) == (FrameType.OK, b"x")
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_bad_magic_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(b"XXXX" + struct.pack("<BI", 1, 0))
            with pytest.raises(ProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_declared_length_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(MAGIC + struct.pack("<BI", 1, MAX_PAYLOAD + 1))
            with pytest.raises(ProtocolError, match="limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(MAGIC + struct.pack("<BI", 1, 100) + b"short")
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_send_rejected_locally(self):
        a, b = socket_pair()
        try:
            class Huge(bytes):
                def __len__(self):
                    return MAX_PAYLOAD + 1
            with pytest.raises(ProtocolError):
                send_frame(a, FrameType.PUSH, Huge())
        finally:
            a.close()
            b.close()

    def test_large_frame_crosses_recv_chunks(self):
        a, b = socket_pair()
        payload = bytes(range(256)) * 2048  # 512 KiB
        received = {}

        def reader():
            received["frame"] = recv_frame(b)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            send_frame(a, FrameType.PROFILE, payload)
            thread.join(timeout=10)
            assert received["frame"] == (FrameType.PROFILE, payload)
        finally:
            a.close()
            b.close()


class TestJson:
    def test_round_trip(self):
        blob = encode_json({"cursor": 3, "alerts": []})
        assert decode_json(blob) == {"cursor": 3, "alerts": []}

    def test_canonical_key_order(self):
        assert encode_json({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}'

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError):
            decode_json(b"{nope")

    def test_bad_utf8_raises(self):
        with pytest.raises(ProtocolError):
            decode_json(b"\xff\xfe")

    def test_frame_type_names(self):
        assert FrameType.name(FrameType.PUSH) == "PUSH"
        assert FrameType.name(0x7F) == "0x7f"

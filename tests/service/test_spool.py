"""Tests for the crash-safe on-disk push spool."""

import pytest

from repro.core.profileset import ProfileSet
from repro.service.spool import Spool


def payload(latency=100.0, ops=10):
    return ProfileSet.from_operation_latencies(
        {"read": [latency] * ops}).to_bytes()


class TestIdentity:
    def test_generates_and_persists_client_id(self, tmp_path):
        first = Spool(tmp_path)
        assert first.client_id.startswith("osprof-")
        assert Spool(tmp_path).client_id == first.client_id

    def test_explicit_client_id_wins_and_sticks(self, tmp_path):
        Spool(tmp_path, client_id="collector-9")
        assert Spool(tmp_path).client_id == "collector-9"


class TestQueue:
    def test_append_assigns_monotonic_seqs(self, tmp_path):
        spool = Spool(tmp_path)
        assert [spool.append(payload()) for _ in range(3)] == [1, 2, 3]
        assert spool.pending() == [1, 2, 3]
        assert len(spool) == 3

    def test_payload_round_trips(self, tmp_path):
        spool = Spool(tmp_path)
        blob = payload(latency=250.0)
        seq = spool.append(blob)
        assert spool.payload(seq) == blob

    def test_remove_is_idempotent(self, tmp_path):
        spool = Spool(tmp_path)
        seq = spool.append(payload())
        spool.remove(seq)
        spool.remove(seq)
        assert spool.pending() == []

    def test_seq_survives_reopen_with_pending_entries(self, tmp_path):
        spool = Spool(tmp_path)
        spool.append(payload())
        spool.append(payload())
        assert Spool(tmp_path).append(payload()) == 3

    def test_seq_never_reused_after_full_drain(self, tmp_path):
        # The high-water mark outlives the files: dedup identity must
        # not reset just because the backlog emptied.
        spool = Spool(tmp_path)
        seq = spool.append(payload())
        spool.remove(seq)
        assert Spool(tmp_path).append(payload()) == 2

    def test_temp_files_invisible_to_pending(self, tmp_path):
        spool = Spool(tmp_path)
        spool.append(payload())
        (tmp_path / f".tmp-{2:020d}.ospb").write_bytes(b"partial")
        assert spool.pending() == [1]


class TestDrain:
    def test_drains_in_order_and_removes(self, tmp_path):
        spool = Spool(tmp_path)
        blobs = [payload(latency=100.0 * (i + 1)) for i in range(3)]
        for blob in blobs:
            spool.append(blob)
        delivered = []
        count = spool.drain(lambda seq, data: delivered.append((seq, data)))
        assert count == 3
        assert delivered == [(1, blobs[0]), (2, blobs[1]), (3, blobs[2])]
        assert spool.pending() == []

    def test_push_failure_stops_drain_and_keeps_rest(self, tmp_path):
        spool = Spool(tmp_path)
        for _ in range(3):
            spool.append(payload())
        seen = []

        def push(seq, data):
            if seq == 2:
                raise ConnectionError("server went away")
            seen.append(seq)

        with pytest.raises(ConnectionError):
            spool.drain(push)
        assert seen == [1]
        assert spool.pending() == [2, 3]

    def test_corrupt_entry_quarantined_never_pushed(self, tmp_path):
        spool = Spool(tmp_path)
        good = spool.append(payload())
        bad = spool.append(payload())
        path = tmp_path / f"{bad:020d}.ospb"
        path.write_bytes(path.read_bytes()[:10])  # torn write
        delivered = []
        count = spool.drain(lambda seq, data: delivered.append(seq))
        assert count == 1
        assert delivered == [good]
        assert spool.corrupted == 1
        assert spool.pending() == []
        assert (tmp_path / f"{bad:020d}.corrupt").exists()

    def test_drain_of_empty_spool_is_zero(self, tmp_path):
        assert Spool(tmp_path).drain(lambda s, d: None) == 0

"""The event-loop transport honors every contract the threaded one does.

Same wire protocol (the unmodified blocking :class:`ServiceClient`
talks to it), same canonical merge results, same hardening: oversize
frames judged from the header, idle peers timed out, saturated ingest
slots answered with ``RETRY_AFTER``, graceful drain losing nothing that
was acked — plus the invariant the threaded server never needed:
per-connection buffering stays bounded no matter how hard a client
pipelines.
"""

import socket
import struct
import threading
import time

import pytest

from repro.core.profileset import ProfileSet
from repro.service.aio_server import READ_CHUNK, AsyncProfileServer
from repro.service.client import (RetryAfter, ServiceClient, ServiceError,
                                  parse_endpoint)
from repro.service.protocol import (MAGIC, FrameType, recv_frame,
                                    send_frame, _HEADER)
from repro.service.server import ProfileService, ServiceConfig


def pset(seed=0, ops=20):
    return ProfileSet.from_operation_latencies(
        {"read": [100 + seed * 13 + i * 7 for i in range(ops)],
         "write": [4000 + seed * 5 + i * 11 for i in range(ops // 2)]})


def make_server(**config_kwargs):
    config_kwargs.setdefault("segment_seconds", 3600.0)
    service = ProfileService(config=ServiceConfig(**config_kwargs))
    server = AsyncProfileServer(service)
    server.serve_in_thread()
    return service, server


class TestWireParity:
    """The blocking clients speak to the event loop unchanged."""

    def test_push_metrics_snapshot_roundtrip(self):
        service, server = make_server()
        try:
            host, port = server.address
            sent = [pset(i) for i in range(4)]
            with ServiceClient(host, port) as client:
                for ps in sent:
                    status = client.push(ps)
                    assert "merged" in status
                page = client.metrics()
                assert "osprof_ingest_requests_total 4" in page
                assert "osprof_aio_connections_total" in page
                snap = client.snapshot()
            assert snap.to_bytes() == ProfileSet.merged(sent).to_bytes()
        finally:
            server.server_close()

    def test_sequenced_push_deduplicates(self):
        service, server = make_server()
        try:
            host, port = server.address
            ps = pset(7)
            with ServiceClient(host, port) as client:
                first = client.push_sequenced("c1", 1, ps.to_bytes())
                replay = client.push_sequenced("c1", 1, ps.to_bytes())
                assert "merged" in first
                assert "duplicate" in replay
                snap = client.snapshot()
            assert snap.to_bytes() == ProfileSet.merged([ps]).to_bytes()
        finally:
            server.server_close()

    def test_corrupt_push_gets_error_and_connection_survives(self):
        service, server = make_server()
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError):
                    client.push_payload(b"this is not a profile")
                # Same connection still works afterwards.
                assert "merged" in client.push(pset())
        finally:
            server.server_close()

    def test_alerts_roundtrip(self):
        service, server = make_server()
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                cursor, alerts = client.alerts(0)
                assert alerts == []
        finally:
            server.server_close()

    def test_parse_endpoint_helper(self):
        assert parse_endpoint("127.0.0.1:7461") == ("127.0.0.1", 7461)


class TestHardening:
    """Oversize guard, read timeout, protocol desync — all preserved."""

    def test_oversize_frame_rejected_from_header(self):
        service, server = make_server(max_frame_bytes=1024)
        try:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5.0)
            try:
                # Header alone declares 1 MiB: no payload ever sent.
                sock.sendall(struct.pack("<4sBI", MAGIC, FrameType.PUSH,
                                         1 << 20))
                frame = recv_frame(sock)
                assert frame is not None
                ftype, payload = frame
                assert ftype == FrameType.ERROR
                assert b"exceeds" in payload
                assert recv_frame(sock) is None  # server closed
            finally:
                sock.close()
            assert service.frames_oversize == 1
        finally:
            server.server_close()

    def test_bad_magic_drops_connection(self):
        service, server = make_server()
        try:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5.0)
            try:
                sock.sendall(b"JUNK" + b"\x01\x00\x00\x00\x00")
                assert recv_frame(sock) is None
            finally:
                sock.close()
        finally:
            server.server_close()

    def test_idle_connection_times_out(self):
        service, server = make_server(read_timeout=0.2)
        try:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5.0)
            try:
                assert recv_frame(sock) is None  # dropped, not served
            finally:
                sock.close()
            deadline = time.time() + 5.0
            while service.read_timeouts == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert service.read_timeouts == 1
        finally:
            server.server_close()

    def test_unsupported_frame_type_answers_error(self):
        service, server = make_server()
        try:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5.0)
            try:
                send_frame(sock, 0x7F, b"")
                frame = recv_frame(sock)
                assert frame is not None and frame[0] == FrameType.ERROR
            finally:
                sock.close()
        finally:
            server.server_close()


class TestBackpressure:
    """Saturated ingest slots shed load with RETRY_AFTER, identically."""

    def test_saturated_slots_answer_retry_after(self):
        service, server = make_server(max_pending=2,
                                      retry_after_seconds=0.07)
        try:
            host, port = server.address
            # Occupy every slot out-of-band: the transport and this
            # test share the service's one gate.
            assert service.try_acquire_ingest_slot()
            assert service.try_acquire_ingest_slot()
            try:
                with ServiceClient(host, port) as client:
                    with pytest.raises(RetryAfter) as exc_info:
                        client.push(pset())
                    assert exc_info.value.seconds == pytest.approx(0.07)
            finally:
                service.release_ingest_slot()
                service.release_ingest_slot()
            assert service.backpressure_rejections == 1
            # Slots freed: the same wire accepts pushes again.
            with ServiceClient(host, port) as client:
                assert "merged" in client.push(pset())
        finally:
            server.server_close()


class TestBoundedMemory:
    """Pipelining cannot grow an unbounded pending-frame queue."""

    def test_pipelined_burst_all_answered_in_order(self):
        service, server = make_server()
        try:
            host, port = server.address
            payload = pset(3, ops=10).to_bytes()
            frame = _HEADER.pack(MAGIC, FrameType.PUSH,
                                 len(payload)) + payload
            count = 64
            sock = socket.create_connection((host, port), timeout=10.0)
            try:
                sock.sendall(frame * count)  # one burst, no reads between
                for _ in range(count):
                    reply = recv_frame(sock)
                    assert reply is not None and reply[0] == FrameType.OK
            finally:
                sock.close()
            assert service.ingest_requests == count
            # The invariant: every already-buffered frame is dispatched
            # before the next read, so the parser never holds more than
            # one read chunk plus one partial frame.
            assert server.max_parser_buffered <= READ_CHUNK \
                + _HEADER.size + len(payload)
        finally:
            server.server_close()


class TestDrain:
    """Graceful drain: acked pushes are merged, listeners go quiet."""

    def test_drain_loses_no_acked_push(self):
        service, server = make_server(max_pending=32)
        host, port = server.address
        acked_ops = []
        sent_ops = []
        stop = threading.Event()

        def pusher(seed):
            client = ServiceClient(host, port)
            k = 0
            try:
                while not stop.is_set():
                    ps = pset(seed * 1000 + k, ops=8)
                    sent_ops.append(ps.total_ops())
                    try:
                        client.push(ps)
                    except Exception:
                        return  # drain cut us off mid-request
                    acked_ops.append(ps.total_ops())
                    k += 1
            finally:
                client.close()

        threads = [threading.Thread(target=pusher, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        assert server.drain(timeout=5.0)
        for thread in threads:
            thread.join(timeout=5.0)
        merged = service.snapshot().total_ops()
        # Every acked push is merged; unacked ones may or may not be.
        assert merged >= sum(acked_ops) > 0
        assert merged <= sum(sent_ops)
        # The listener is closed: new connections are refused.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0).close()
        server.server_close()

    def test_drain_cancels_idle_stragglers(self):
        service, server = make_server(read_timeout=60.0)
        host, port = server.address
        # An idle watcher parked on a read, holding a connection open.
        sock = socket.create_connection((host, port), timeout=5.0)
        deadline = time.time() + 5.0
        while server.active_connections == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert not server.drain(timeout=0.3)  # straggler was cancelled
        assert server.active_connections == 0
        sock.close()
        server.server_close()

    def test_server_close_is_idempotent(self):
        service, server = make_server()
        server.server_close()
        server.server_close()

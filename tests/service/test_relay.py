"""The relay's exactly-once story, attacked joint by joint.

The aggregation tree only works if a leaf's forwarding is idempotent
across every crash window: before the ack, after the ack but before the
batch commit, after the commit but before the spool cleanup.  These
tests drive :class:`~repro.service.relay.RelayService` directly through
each window — the durable state file, the spool scan, the write-ahead
in-flight marker — and measure the one thing that matters at the root:
the merged profile is byte-identical to merging every client's raw
segments exactly once.
"""

import pytest

from repro.core.profileset import ProfileSet
from repro.service.aio_server import AsyncProfileServer
from repro.service.client import ServiceUnavailableError
from repro.service.relay import RelayServer, RelayService, RelayState
from repro.service.server import ProfileService, ServiceConfig


def pset(seed=0, ops=12):
    return ProfileSet.from_operation_latencies(
        {"read": [150 + seed * 17 + i * 3 for i in range(ops)],
         "unlink": [9000 + seed * 7 + i * 5 for i in range(ops // 3)]})


@pytest.fixture()
def root():
    service = ProfileService(config=ServiceConfig(segment_seconds=3600.0))
    server = AsyncProfileServer(service)
    server.serve_in_thread()
    yield service, server
    server.server_close()


def make_relay(tmp_path, upstream, **kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    kwargs.setdefault("retries", 1)
    return RelayService(tmp_path / "leaf", upstream=upstream, **kwargs)


class TestAcceptPath:
    """Spool-before-ack, dedup, and rejection accounting."""

    def test_accept_spools_and_acks(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        status, fresh = relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        assert fresh and "relayed" in status
        assert relay.pending_entries() != []
        assert relay.accepted == 1

    def test_duplicate_sequence_not_respooled(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        before = relay.pending_entries()
        status, fresh = relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        assert not fresh and "duplicate" in status
        assert relay.pending_entries() == before
        assert relay.duplicates == 1

    def test_corrupt_payload_raises_before_spooling(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        with pytest.raises(ValueError):
            relay.accept_sequenced("c1", 1, b"garbage")
        assert relay.pending_entries() == []
        # The sequence was NOT recorded: the client may resend the
        # pristine copy under the same number.
        status, fresh = relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        assert fresh

    def test_snapshot_merges_pending(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        sent = [pset(i) for i in range(3)]
        for i, ps in enumerate(sent):
            relay.accept_sequenced("c1", i + 1, ps.to_bytes())
        assert relay.snapshot().to_bytes() == \
            ProfileSet.merged(sent).to_bytes()


class TestForwarding:
    """Batch composition, canonical merge, and the happy path."""

    def test_forward_merges_batches_byte_identically(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address, batch=3)
        sent = []
        for c in range(2):
            for k in range(4):
                ps = pset(c * 50 + k)
                sent.append(ps)
                relay.accept_sequenced(f"c{c}", k + 1, ps.to_bytes())
        forwarded = relay.forward()
        assert forwarded == 8
        assert relay.pending_entries() == []
        assert relay.forwarded_batches == 3  # 3 + 3 + 2
        assert service.snapshot().to_bytes() == \
            ProfileSet.merged(sent).to_bytes()

    def test_plain_pushes_forwarded_too(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address)
        sent = [pset(9), pset(10)]
        for ps in sent:
            relay.accept_payload(ps.to_bytes())
        relay.forward()
        assert service.snapshot().to_bytes() == \
            ProfileSet.merged(sent).to_bytes()

    def test_unreachable_upstream_keeps_spool(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))  # nothing there
        relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        with pytest.raises(ServiceUnavailableError):
            relay.forward()
        assert relay.forward_errors == 1
        assert len(relay.pending_entries()) == 1

    def test_forward_nothing_is_a_noop(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        assert relay.forward() == 0


class TestCrashWindows:
    """Every restart window converges to exactly-once at the root."""

    def test_replay_after_crash_between_ack_and_commit(self, tmp_path,
                                                       root):
        service, server = root
        relay = make_relay(tmp_path, server.address, batch=8)
        sent = [pset(i) for i in range(5)]
        for i, ps in enumerate(sent):
            relay.accept_sequenced("c1", i + 1, ps.to_bytes())

        class CrashAfterAck:
            """Upstream push lands, then the relay process 'dies'."""

            def __init__(self, inner):
                self.inner = inner

            def push_with_seq(self, seq, payload):
                self.inner.push_with_seq(seq, payload)
                raise RuntimeError("simulated crash after upstream ack")

            def close(self):
                self.inner.close()

        relay._upstream_client = CrashAfterAck(relay._client())
        with pytest.raises(RuntimeError):
            relay.forward()
        # The ack landed upstream but no commit was written: the
        # in-flight marker survives for the next incarnation.
        assert RelayState(tmp_path / "leaf").inflight is not None

        reborn = make_relay(tmp_path, server.address, batch=8)
        assert reborn.relay_id == relay.relay_id
        reborn.forward()  # replays the same batch under the same seq
        assert reborn.pending_entries() == []
        # The root deduplicated the replay: merged exactly once.
        assert service.snapshot().to_bytes() == \
            ProfileSet.merged(sent).to_bytes()

    def test_replay_after_crash_before_push(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address, batch=8)
        sent = [pset(i + 30) for i in range(3)]
        for i, ps in enumerate(sent):
            relay.accept_sequenced("c1", i + 1, ps.to_bytes())
        # Crash window 1: marker written, push never happened.
        relay.state.inflight = (relay.pending_entries()[-1],
                                relay.state.up_seq + 1)
        relay.state.save()
        reborn = make_relay(tmp_path, server.address, batch=8)
        reborn.forward()
        assert service.snapshot().to_bytes() == \
            ProfileSet.merged(sent).to_bytes()

    def test_restart_purges_below_watermark(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address)
        relay.accept_sequenced("c1", 1, pset(1).to_bytes())
        relay.forward()
        # Crash window 3: commit written, spool cleanup never ran.
        # Resurrect the forwarded entry by hand.
        from repro.core import durable
        from repro.service.protocol import encode_push_seq
        durable.write_atomic(relay.spool._path(1), encode_push_seq(
            "c1", 1, pset(1).to_bytes()))
        reborn = make_relay(tmp_path, server.address)
        assert reborn.pending_entries() == []  # purged, not re-sent
        reborn.forward()
        assert service.snapshot().to_bytes() == \
            ProfileSet.merged([pset(1)]).to_bytes()


class TestLedgerDurability:
    """Downstream dedup survives restarts through state + spool scan."""

    def test_forwarded_marks_survive_restart(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address)
        relay.accept_sequenced("c1", 3, pset(1).to_bytes())
        relay.forward()  # entry leaves the spool; mark folds into state
        reborn = make_relay(tmp_path, server.address)
        status, fresh = reborn.accept_sequenced("c1", 3,
                                                pset(1).to_bytes())
        assert not fresh and "duplicate" in status

    def test_spooled_marks_rebuilt_on_restart(self, tmp_path):
        relay = make_relay(tmp_path, ("127.0.0.1", 1))
        relay.accept_sequenced("c1", 2, pset(1).to_bytes())
        # Never forwarded; the ledger entry must come from the spool.
        reborn = make_relay(tmp_path, ("127.0.0.1", 1))
        status, fresh = reborn.accept_sequenced("c1", 2,
                                                pset(1).to_bytes())
        assert not fresh and "duplicate" in status
        assert len(reborn.pending_entries()) == 1

    def test_state_file_round_trips(self, tmp_path):
        state = RelayState(tmp_path)
        state.relay_id = "relay-x"
        state.forwarded = 7
        state.up_seq = 3
        state.inflight = (9, 4)
        state.ledger = {"c1": 5}
        state.save()
        loaded = RelayState(tmp_path)
        assert loaded.relay_id == "relay-x"
        assert loaded.forwarded == 7
        assert loaded.up_seq == 3
        assert loaded.inflight == (9, 4)
        assert loaded.ledger == {"c1": 5}

    def test_corrupt_state_file_is_loud(self, tmp_path):
        (tmp_path / "relay-state.json").write_text("{not json")
        with pytest.raises(ValueError):
            RelayState(tmp_path)


class TestRelayServer:
    """The served relay: wire dedup, metrics, drain-forwards."""

    def test_served_relay_forwards_on_drain(self, tmp_path, root):
        service, server = root
        relay = make_relay(tmp_path, server.address, batch=100)
        leaf = RelayServer(relay, flush_interval=None)  # no forwarder
        leaf.serve_in_thread()
        try:
            from repro.service.client import ServiceClient
            host, port = leaf.address
            sent = [pset(i + 70) for i in range(3)]
            with ServiceClient(host, port) as client:
                for i, ps in enumerate(sent):
                    status = client.push_sequenced("c9", i + 1,
                                                   ps.to_bytes())
                    assert "relayed" in status
                page = client.metrics()
                assert "osprof_relay_accepted_total 3" in page
                snap = client.snapshot()  # pending merge, pre-forward
            assert snap.to_bytes() == ProfileSet.merged(sent).to_bytes()
            assert leaf.drain(5.0)
            assert relay.pending_entries() == []
            assert service.snapshot().to_bytes() == \
                ProfileSet.merged(sent).to_bytes()
        finally:
            leaf.server_close()

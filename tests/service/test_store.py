"""Tests for the rolling time-segmented store."""

import pytest

from repro.core.buckets import BucketSpec
from repro.core.profileset import ProfileSet
from repro.service.store import SegmentStore


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


def pset(op="read", latency=100.0, ops=10):
    return ProfileSet.from_operation_latencies({op: [latency] * ops})


class TestConstruction:
    def test_rejects_bad_segment_length(self):
        with pytest.raises(ValueError):
            SegmentStore(0, 4)

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            SegmentStore(5.0, 0)


class TestIngestAndRotation:
    def test_ingest_merges_into_current_segment(self):
        store = SegmentStore(5.0, 4, clock=FakeClock())
        store.ingest(pset(ops=10))
        store.ingest(pset(ops=7))
        assert store.current.pset["read"].total_ops == 17
        assert store.current.ingests == 2

    def test_rotation_closes_segment_at_boundary(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 4, clock=clock)
        store.ingest(pset(ops=3))
        clock.now += 5.0
        closed = store.ingest(pset(ops=4))
        assert [seg.index for seg in closed] == [0]
        assert closed[0].pset["read"].total_ops == 3
        assert store.current.index == 1

    def test_idle_gap_does_not_materialize_empty_segments(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 10, clock=clock)
        store.ingest(pset())
        clock.now += 50.0  # ten segment lengths later
        closed = store.ingest(pset())
        assert len(closed) == 1
        assert store.current.index == 10
        assert len(store.closed_segments()) == 1

    def test_retention_evicts_oldest(self):
        clock = FakeClock()
        store = SegmentStore(1.0, 2, clock=clock)
        for i in range(5):
            store.ingest(pset(ops=i + 1))
            clock.now += 1.0
        store.advance()
        kept = store.closed_segments()
        assert len(kept) == 2
        assert [seg.index for seg in kept] == [3, 4]
        assert store.segments_evicted == 3
        assert store.segments_closed == 5

    def test_advance_without_ingest_rotates(self):
        clock = FakeClock()
        store = SegmentStore(2.0, 4, clock=clock)
        store.ingest(pset())
        clock.now += 2.0
        closed = store.advance()
        assert len(closed) == 1
        assert closed[0].ingests == 1

    def test_resolution_mismatch_rejected(self):
        store = SegmentStore(5.0, 4, clock=FakeClock())
        alien = ProfileSet(spec=BucketSpec(2))
        alien.add("read", 100.0)
        with pytest.raises(ValueError, match="resolution"):
            store.ingest(alien)


class TestMerged:
    def test_merged_spans_closed_and_current(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 4, clock=clock)
        store.ingest(pset(ops=10))
        clock.now += 5.0
        store.ingest(pset(ops=5))
        merged = store.merged()
        assert merged["read"].total_ops == 15

    def test_merged_is_byte_identical_to_serial_merge(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 8, clock=clock)
        pushes = [pset("read", 100.0 * (i + 1), ops=5 + i)
                  for i in range(6)]
        pushes += [pset("llseek", 50.0, ops=9)]
        for i, p in enumerate(pushes):
            store.ingest(p)
            if i % 2:
                clock.now += 5.0
        serial = ProfileSet.merged(pushes)
        assert store.merged().to_bytes() == serial.to_bytes()

    def test_merged_empty_store(self):
        store = SegmentStore(5.0, 4, clock=FakeClock())
        merged = store.merged()
        assert len(merged) == 0
        assert merged.to_bytes() == ProfileSet().to_bytes()

    def test_counters_and_len(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 4, clock=clock)
        assert len(store) == 1
        store.ingest(pset(ops=4))
        clock.now += 5.0
        store.advance()
        assert len(store) == 2
        assert store.total_ops() == 4


class TestEvictionHook:
    def test_on_evict_sees_every_dropped_segment(self):
        clock = FakeClock()
        evicted = []
        store = SegmentStore(5.0, 2, clock=clock,
                             on_evict=evicted.append)
        for i in range(6):
            store.ingest(pset(latency=100.0 + i))
            clock.now += 5.0
        store.advance()
        # 6 segments closed, retention 2: the oldest 4 were dropped,
        # oldest first, and every one passed through the hook.
        assert [seg.index for seg in evicted] == [0, 1, 2, 3]
        assert evicted[0].pset["read"].mean_latency() == 100.0
        assert store.segments_evicted == 4

    def test_no_hook_keeps_old_behavior(self):
        clock = FakeClock()
        store = SegmentStore(5.0, 1, clock=clock)
        for _ in range(3):
            store.ingest(pset())
            clock.now += 5.0
        store.advance()
        assert store.segments_evicted == 2

    def test_raising_hook_propagates(self):
        # Silent data loss is worse than a failed rotation: the store
        # must not swallow an on_evict failure.
        clock = FakeClock()

        def explode(segment):
            raise RuntimeError("durability layer down")

        store = SegmentStore(5.0, 1, clock=clock, on_evict=explode)
        for _ in range(2):
            store.ingest(pset())
            clock.now += 5.0
        with pytest.raises(RuntimeError, match="durability layer down"):
            store.advance()

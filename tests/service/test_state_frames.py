"""Wait-state frames (``STATE_PUSH``/``STATE_SNAPSHOT``) on both transports.

The contract is transport-independent: the blocking client pushes a
StateProfile, the service folds it into its rolling state window (and
its warehouse, when one is attached), and the snapshot comes back as
one canonically merged profile — identical through the threaded server
and the event loop.
"""

import pytest

from repro.sampling import StateProfile
from repro.service.aio_server import AsyncProfileServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (FrameType, ProtocolError,
                                    decode_state_push, encode_state_push)
from repro.service.server import (ProfileServer, ProfileService,
                                  ServiceConfig)
from repro.warehouse import Warehouse


def sprof(seed=0, intervals=2):
    out = StateProfile(name="state-samples", interval=500.0)
    out.intervals = intervals
    out.add("blocked", "filesystem", "llseek", "sem:i_sem:3", 30 + seed)
    out.add("blocked", "filesystem", "read", "io:read", 9)
    out.add("running", "user", "-", "-", 4)
    return out


class TestStatePushCodec:
    def test_round_trip(self):
        payload = encode_state_push(1234, sprof().to_bytes())
        overhead, body = decode_state_push(payload)
        assert overhead == 1234
        assert StateProfile.from_bytes(body) == sprof()

    def test_negative_overhead_rejected(self):
        with pytest.raises(ProtocolError):
            encode_state_push(-1, b"")

    def test_truncated_payload_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_state_push(b"\x00\x01\x02")

    def test_zero_overhead_empty_profile_is_legal(self):
        empty = StateProfile(name="e", interval=1.0)
        overhead, body = decode_state_push(
            encode_state_push(0, empty.to_bytes()))
        assert overhead == 0
        assert StateProfile.from_bytes(body).total_samples() == 0


def make_service(**config_kwargs):
    config_kwargs.setdefault("segment_seconds", 3600.0)
    return ProfileService(config=ServiceConfig(**config_kwargs))


@pytest.fixture(params=["threaded", "async"])
def server_factory(request):
    """Build either transport around a service; yields (service, addr)."""
    opened = []

    def build(service):
        if request.param == "threaded":
            server = ProfileServer(service)
            server.serve_in_thread()
            opened.append(("threaded", server))
        else:
            server = AsyncProfileServer(service)
            server.serve_in_thread()
            opened.append(("async", server))
        return server.address

    yield build
    for flavor, server in opened:
        if flavor == "threaded":
            server.shutdown()
        server.server_close()


class TestStateFrames:
    def test_push_then_snapshot_merges_window(self, server_factory):
        service = make_service()
        host, port = server_factory(service)
        pushes = [sprof(i) for i in range(3)]
        with ServiceClient(host, port) as client:
            for push in pushes:
                status = client.push_state(push, overhead_ns=100)
                assert "sampled" in status
            snap = client.state_snapshot()
        assert snap.to_bytes() == StateProfile.merged(
            pushes, name="state-window").to_bytes()
        assert service.state_pushes == 3

    def test_metrics_carry_state_and_sampler_counters(self,
                                                      server_factory):
        service = make_service()
        host, port = server_factory(service)
        with ServiceClient(host, port) as client:
            client.push_state(sprof(), overhead_ns=777)
            page = client.metrics()
        assert "osprof_state_pushes_total 1" in page
        assert "osprof_state_errors_total 0" in page
        assert "osprof_state_window 1" in page
        assert "osprof_samples_total 43" in page
        assert "osprof_sample_intervals_total 2" in page
        assert "osprof_sampler_overhead_ns_total 777" in page

    def test_corrupt_state_push_counted_connection_survives(
            self, server_factory):
        service = make_service()
        host, port = server_factory(service)
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="bad-payload"):
                client._roundtrip(
                    FrameType.STATE_PUSH,
                    encode_state_push(0, b"not a state profile"),
                    FrameType.OK)
            # Same connection keeps working after the rejection.
            client.push_state(sprof())
            snap = client.state_snapshot()
        assert snap.total_samples() == sprof().total_samples()
        assert service.state_errors == 1
        assert service.state_pushes == 1

    def test_state_window_is_bounded(self, server_factory):
        service = make_service(state_window=2)
        host, port = server_factory(service)
        with ServiceClient(host, port) as client:
            for i in range(5):
                client.push_state(sprof(i))
            snap = client.state_snapshot()
        # Only the two newest pushes (seeds 3, 4) survive the deque.
        assert snap.to_bytes() == StateProfile.merged(
            [sprof(3), sprof(4)], name="state-window").to_bytes()

    def test_empty_window_snapshot_is_empty_profile(self, server_factory):
        host, port = server_factory(make_service())
        with ServiceClient(host, port) as client:
            snap = client.state_snapshot()
        assert snap.total_samples() == 0


class TestWarehouseDurability:
    def test_state_pushes_reach_the_warehouse(self, tmp_path,
                                              server_factory):
        wh = Warehouse(tmp_path / "wh")
        service = ProfileService(
            config=ServiceConfig(segment_seconds=3600.0), warehouse=wh)
        host, port = server_factory(service)
        with ServiceClient(host, port) as client:
            client.push_state(sprof(0))
            client.push_state(sprof(1))
        merged = wh.query_states("service")
        assert merged.to_bytes() == StateProfile.merged(
            [sprof(0), sprof(1)]).to_bytes()
        # And the latency side of the warehouse saw nothing.
        assert wh.segments("service") == []

"""Tests for the self-healing client: backoff, classification, retries."""

import random
import socket

import pytest

from repro.core.profileset import ProfileSet
from repro.service.client import (Backoff, ResilientServiceClient,
                                  RetryAfter, ServiceClient, ServiceError,
                                  ServiceUnavailableError, is_retryable)
from repro.service.protocol import ProtocolError
from repro.service.server import ProfileServer, ProfileService, ServiceConfig


def pset(latency=100.0, ops=20):
    return ProfileSet.from_operation_latencies({"read": [latency] * ops})


@pytest.fixture
def server():
    srv = ProfileServer(ProfileService(ServiceConfig(
        segment_seconds=60.0, retry_after_seconds=0.01)))
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    srv.server_close()


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackoff:
    def test_delay_within_full_jitter_envelope(self):
        backoff = Backoff(base=0.1, cap=1.0, rng=random.Random(1))
        for attempt in range(8):
            delay = backoff.delay(attempt)
            assert 0.0 <= delay <= min(1.0, 0.1 * 2 ** attempt)

    def test_cap_bounds_late_attempts(self):
        backoff = Backoff(base=0.5, cap=1.0, rng=random.Random(2))
        assert all(backoff.delay(20) <= 1.0 for _ in range(32))

    def test_injected_rng_reproduces_schedule(self):
        a = Backoff(base=0.1, rng=random.Random(7))
        b = Backoff(base=0.1, rng=random.Random(7))
        assert [a.delay(n) for n in range(6)] == \
            [b.delay(n) for n in range(6)]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Backoff(base=0.0)
        with pytest.raises(ValueError):
            Backoff(base=1.0, cap=0.5)


class TestClassification:
    def test_transport_errors_are_retryable(self):
        assert is_retryable(ConnectionRefusedError("refused"))
        assert is_retryable(ConnectionResetError("reset"))
        assert is_retryable(socket.timeout("slow"))
        assert is_retryable(ProtocolError("desync"))
        assert is_retryable(RetryAfter(0.1))

    def test_transit_damage_is_retryable(self):
        assert is_retryable(ServiceError("bad-payload: CRC mismatch"))

    def test_server_rejection_is_fatal(self):
        assert not is_retryable(ServiceError("resolution 2 differs"))

    def test_name_resolution_is_fatal(self):
        assert not is_retryable(socket.gaierror("no such host"))

    def test_unrelated_exceptions_are_fatal(self):
        assert not is_retryable(KeyError("x"))


class TestRetryEngine:
    def test_unreachable_service_raises_typed_error_with_cause(self):
        slept = []
        client = ResilientServiceClient(
            "127.0.0.1", free_port(), retries=2,
            backoff=Backoff(base=0.001, rng=random.Random(0)),
            sleep=slept.append)
        with pytest.raises(ServiceUnavailableError) as info:
            client.push(pset())
        assert "3 attempt(s)" in str(info.value)
        assert isinstance(info.value.__cause__, OSError)
        assert len(slept) == 2  # no sleep after the final attempt
        assert client.retries_performed == 3

    def test_push_succeeds_against_live_server(self, server):
        host, port = server.address
        with ResilientServiceClient(host, port, retries=1) as client:
            assert "seq 1" in client.push(pset())
            assert "seq 2" in client.push(pset())
        assert server.service.ingest_requests == 2

    def test_retry_after_consumes_attempt_then_succeeds(self, server):
        host, port = server.address
        service = server.service
        assert service.try_acquire_ingest_slot()  # congest: hold a slot
        held = {"active": True}

        def sleep(seconds):
            # The client honoring RETRY_AFTER sleeps the suggested time;
            # the congestion clears while it waits.
            if held["active"]:
                service.release_ingest_slot()
                held["active"] = False

        config_pending = service.config.max_pending
        for _ in range(config_pending - 1):
            assert service.try_acquire_ingest_slot()
        try:
            with ResilientServiceClient(host, port, retries=2,
                                        sleep=sleep) as client:
                assert "seq 1" in client.push(pset())
            assert not held["active"]
            assert service.backpressure_rejections >= 1
        finally:
            for _ in range(config_pending - 1):
                service.release_ingest_slot()

    def test_independent_clients_never_dedup_each_other(self, server):
        # Spool-less clients restart their sequences at 1, so default
        # identities must be unique per client — two pushers in one
        # process must both land.
        host, port = server.address
        with ResilientServiceClient(host, port, retries=1) as first:
            first.push(pset())
        with ResilientServiceClient(host, port, retries=1) as second:
            status = second.push(pset())
        assert "duplicate" not in status
        assert server.service.ingest_requests == 2

    def test_queries_share_the_healing_loop(self, server):
        host, port = server.address
        with ResilientServiceClient(host, port, retries=1) as client:
            client.push(pset(ops=50))
            assert "osprof_ingest_requests_total 1" in client.metrics()
            assert client.snapshot()["read"].total_ops == 50


class TestSpoolMode:
    def test_push_spools_when_service_down(self, tmp_path):
        client = ResilientServiceClient(
            "127.0.0.1", free_port(), retries=0, spool_dir=str(tmp_path),
            backoff=Backoff(base=0.001), sleep=lambda s: None)
        status = client.push(pset())
        assert "spooled seq 1" in status
        assert len(client.spool) == 1

    def test_backlog_drains_on_next_push(self, server, tmp_path):
        host, port = server.address
        offline = ResilientServiceClient(
            "127.0.0.1", free_port(), retries=0, spool_dir=str(tmp_path),
            sleep=lambda s: None)
        offline.push(pset(latency=100.0))
        with ResilientServiceClient(host, port, retries=1,
                                    spool_dir=str(tmp_path)) as client:
            status = client.push(pset(latency=200.0))
        assert "drained 2" in status
        assert server.service.ingest_requests == 2
        assert len(client.spool) == 0


class TestCloseError:
    def test_close_records_oserror_instead_of_raising(self):
        class BrokenSocket:
            def close(self):
                raise OSError("close failed")

        client = ServiceClient("", 0, sock=BrokenSocket())
        client.close()  # must not raise
        assert isinstance(client.close_error, OSError)

"""Tests for online differential alerting."""

import pytest

from repro.core.profileset import ProfileSet
from repro.service.alerts import (DISTRIBUTION_SHIFT, NEW_OPERATION,
                                  NEW_PEAK, Alert, DifferentialAlerter)


def pset(samples):
    return ProfileSet.from_operation_latencies(samples)


STEADY = {"read": [100.0] * 100}


class TestConfig:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            DifferentialAlerter(metric="nope")

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            DifferentialAlerter(baseline_segments=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DifferentialAlerter(threshold=0)


class TestObserve:
    def test_first_segment_never_alerts(self):
        alerter = DifferentialAlerter(min_ops=10)
        assert alerter.observe(0, pset(STEADY)) == []

    def test_steady_traffic_stays_silent(self):
        alerter = DifferentialAlerter(min_ops=10)
        for i in range(5):
            assert alerter.observe(i, pset(STEADY)) == []

    def test_new_peak_alert_names_operation_and_location(self):
        alerter = DifferentialAlerter(min_ops=10, threshold=0.5)
        alerter.observe(0, pset({"llseek": [100.0] * 100}))
        alerts = alerter.observe(
            1, pset({"llseek": [100.0] * 80 + [60000.0] * 20}))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.kind == NEW_PEAK
        assert alert.operation == "llseek"
        assert alert.segment == 1
        assert "15" in alert.detail  # floor(log2(60000)) = 15

    def test_distribution_shift_alert(self):
        alerter = DifferentialAlerter(min_ops=10, threshold=0.5)
        alerter.observe(0, pset(STEADY))
        alerts = alerter.observe(1, pset({"read": [500.0] * 100}))
        assert [a.kind for a in alerts] == [DISTRIBUTION_SHIFT]
        assert alerts[0].score > alerts[0].threshold

    def test_new_operation_alert(self):
        alerter = DifferentialAlerter(min_ops=10)
        alerter.observe(0, pset(STEADY))
        alerts = alerter.observe(
            1, pset({"read": [100.0] * 100, "fsync": [900.0] * 50}))
        assert [(a.kind, a.operation) for a in alerts] == [
            (NEW_OPERATION, "fsync")]

    def test_sparse_operations_ignored(self):
        alerter = DifferentialAlerter(min_ops=50)
        alerter.observe(0, pset(STEADY))
        # Only 10 ops: too sparse to judge, whatever its shape.
        alerts = alerter.observe(
            1, pset({"read": [100.0] * 100, "fsync": [900.0] * 10}))
        assert alerts == []

    def test_baseline_is_rolling(self):
        alerter = DifferentialAlerter(baseline_segments=2, min_ops=10,
                                      threshold=0.5)
        alerter.observe(0, pset(STEADY))
        # A sustained shift alerts once, then becomes the new normal.
        shifted = {"read": [800.0] * 100}
        assert len(alerter.observe(1, pset(shifted))) == 1
        assert len(alerter.observe(2, pset(shifted))) in (0, 1)
        assert alerter.observe(3, pset(shifted)) == []

    def test_empty_segment_does_not_enter_baseline(self):
        alerter = DifferentialAlerter(baseline_segments=1, min_ops=10,
                                      threshold=0.5)
        alerter.observe(0, pset(STEADY))
        alerter.observe(1, ProfileSet())
        baseline = alerter.baseline()
        assert baseline is not None
        assert baseline["read"].total_ops == 100

    def test_baseline_none_before_any_segment(self):
        assert DifferentialAlerter().baseline() is None


class TestAlertRecord:
    def test_dict_round_trip(self):
        alert = Alert(segment=3, operation="read", kind=NEW_PEAK,
                      score=1.25, threshold=0.5, detail="peaks 1 -> 2")
        assert Alert.from_dict(alert.to_dict()) == alert

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            Alert.from_dict({"segment": "x"})

    def test_describe_mentions_everything(self):
        alert = Alert(segment=3, operation="read", kind=NEW_PEAK,
                      score=1.25, threshold=0.5, detail="peaks 1 -> 2")
        text = alert.describe()
        for token in ("segment 3", "read", NEW_PEAK, "1.25", "peaks"):
            assert token in text

"""Property tests: the sans-IO parser equals the blocking one, always.

The event-loop server (:mod:`repro.service.aio_server`) cuts frames out
of the byte stream with :class:`~repro.service.protocol.FrameParser`,
the threaded server with the blocking
:func:`~repro.service.protocol.recv_frame`.  The wire contract only
holds if the two judge *every* stream identically — same frames, same
errors, same header-only oversize rejection — no matter how the kernel
chunks the bytes.  Hypothesis drives that equivalence over random frame
sequences, random chunk boundaries, truncations, corrupted magics and
hostile declared lengths.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import (MAGIC, FrameParser, FrameTooLarge,
                                    ProtocolError, recv_frame, _HEADER)

MAX = 4096  # parser payload limit used throughout; small for fast fuzz


class ScriptedSocket:
    """Just enough of a socket for recv_frame: scripted recv chunks."""

    def __init__(self, chunks):
        self._chunks = [bytes(c) for c in chunks if c]

    def recv(self, n):
        if not self._chunks:
            return b""  # EOF
        chunk = self._chunks[0]
        out, rest = chunk[:n], chunk[n:]
        if rest:
            self._chunks[0] = rest
        else:
            self._chunks.pop(0)
        return out


def frame_bytes(ftype, payload):
    return _HEADER.pack(MAGIC, ftype, len(payload)) + payload


def drain_blocking(chunks):
    """Run recv_frame to exhaustion; returns (frames, error or None)."""
    sock = ScriptedSocket(chunks)
    frames = []
    while True:
        try:
            frame = recv_frame(sock, max_payload=MAX)
        except ProtocolError as exc:
            return frames, exc
        if frame is None:
            return frames, None
        frames.append(frame)


def drain_incremental(chunks):
    """Run FrameParser to exhaustion; returns (frames, error or None)."""
    parser = FrameParser(max_payload=MAX)
    frames = []
    try:
        for chunk in chunks:
            parser.feed(chunk)
            while True:
                frame = parser.next_frame()
                if frame is None:
                    break
                frames.append(frame)
        parser.eof()
    except ProtocolError as exc:
        return frames, exc
    return frames, None


def chop(stream, cuts):
    """Split one byte string at the given (sorted, in-range) offsets."""
    points = sorted({min(c % (len(stream) + 1), len(stream))
                     for c in cuts}) if stream else []
    chunks = []
    prev = 0
    for point in points:
        if point > prev:
            chunks.append(stream[prev:point])
            prev = point
    chunks.append(stream[prev:])
    return [c for c in chunks if c]


frames_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255),
              st.binary(max_size=64)),
    max_size=6)


@st.composite
def stream_and_chunks(draw):
    """A frame stream (possibly damaged), chopped at arbitrary points."""
    frames = draw(frames_strategy)
    stream = b"".join(frame_bytes(t, p) for t, p in frames)
    # Optional damage: truncate the tail, or splice garbage bytes in.
    damage = draw(st.sampled_from(["none", "truncate", "garbage"]))
    if damage == "truncate" and stream:
        stream = stream[:draw(st.integers(0, len(stream) - 1))]
    elif damage == "garbage":
        stream += draw(st.binary(min_size=1, max_size=16))
    cuts = draw(st.lists(st.integers(min_value=0, max_value=1 << 16),
                         max_size=8))
    return chop(stream, cuts)


class TestEquivalence:
    """The core property: both parsers judge any stream identically."""

    @settings(max_examples=300, deadline=None)
    @given(stream_and_chunks())
    def test_same_frames_same_errors(self, chunks):
        blocking_frames, blocking_err = drain_blocking(chunks)
        incremental_frames, incremental_err = drain_incremental(chunks)
        assert incremental_frames == blocking_frames
        assert type(incremental_err) is type(blocking_err)
        if blocking_err is not None:
            assert str(incremental_err) == str(blocking_err)

    @settings(max_examples=100, deadline=None)
    @given(frames_strategy)
    def test_byte_at_a_time_equals_one_shot(self, frames):
        stream = b"".join(frame_bytes(t, p) for t, p in frames)
        dribble, _ = drain_incremental(
            [stream[i:i + 1] for i in range(len(stream))])
        one_shot, _ = drain_incremental([stream])
        assert dribble == one_shot == frames

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=6),
           st.lists(st.integers(min_value=0, max_value=1 << 16),
                    max_size=8))
    def test_pipelined_pushes_roundtrip(self, payloads, cuts):
        frames = [(0x01, p) for p in payloads]
        stream = b"".join(frame_bytes(t, p) for t, p in frames)
        got, err = drain_incremental(chop(stream, cuts))
        assert err is None
        assert got == frames


class TestHostileHeaders:
    """Oversize and corrupt headers are judged without buffering payload."""

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=MAX + 1, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=255))
    def test_oversize_judged_from_header_alone(self, length, ftype):
        parser = FrameParser(max_payload=MAX)
        parser.feed(struct.pack("<4sBI", MAGIC, ftype, length))
        with pytest.raises(FrameTooLarge):
            parser.next_frame()
        # Only the 9 header bytes were ever buffered — the declared
        # payload was never read, exactly like recv_frame.
        assert parser.max_buffered == _HEADER.size

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=4, max_size=4).filter(lambda m: m != MAGIC),
           st.binary(max_size=16))
    def test_bad_magic_raises_protocol_error(self, magic, tail):
        parser = FrameParser(max_payload=MAX)
        parser.feed(magic + b"\x01\x00\x00\x00\x00" + tail)
        with pytest.raises(ProtocolError) as exc_info:
            parser.next_frame()
        assert not isinstance(exc_info.value, FrameTooLarge)

    def test_oversize_split_across_reads(self):
        header = struct.pack("<4sBI", MAGIC, 0x01, MAX + 1)
        parser = FrameParser(max_payload=MAX)
        for i in range(len(header) - 1):
            parser.feed(header[i:i + 1])
            assert parser.next_frame() is None
        parser.feed(header[-1:])
        with pytest.raises(FrameTooLarge):
            parser.next_frame()


class TestTruncation:
    """EOF classification matches recv_frame's three cases exactly."""

    def test_eof_at_boundary_is_clean(self):
        stream = frame_bytes(0x01, b"abc")
        frames, err = drain_incremental([stream])
        assert frames == [(0x01, b"abc")] and err is None

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=48),
           st.integers(min_value=1, max_value=56))
    def test_truncated_tail_matches_blocking(self, payload, cut):
        stream = frame_bytes(0x01, payload)
        cut = min(cut, len(stream) - 1)
        chunks = [stream[:cut]]
        blocking_frames, blocking_err = drain_blocking(chunks)
        incremental_frames, incremental_err = drain_incremental(chunks)
        assert incremental_frames == blocking_frames == []
        assert isinstance(blocking_err, ProtocolError)
        assert type(incremental_err) is type(blocking_err)
        assert str(incremental_err) == str(blocking_err)


class TestBufferHygiene:
    """The compaction keeps long-lived connections from growing a tail."""

    def test_consumed_prefix_is_compacted(self):
        parser = FrameParser(max_payload=MAX)
        frame = frame_bytes(0x01, b"x" * 1024)
        for _ in range(256):  # >> _COMPACT_AT consumed bytes
            parser.feed(frame)
            assert parser.next_frame() == (0x01, b"x" * 1024)
        assert len(parser._buf) < 2 * FrameParser._COMPACT_AT
        assert parser.frames_parsed == 256

    def test_max_buffered_tracks_high_water(self):
        parser = FrameParser(max_payload=MAX)
        frame = frame_bytes(0x01, b"y" * 100)
        parser.feed(frame * 3)
        assert parser.max_buffered == 3 * len(frame)
        for _ in range(3):
            assert parser.next_frame() is not None
        assert parser.next_frame() is None
        assert parser.at_boundary()

"""Tests for the profiling service core and its TCP front end."""

import socket
import struct
import time

import pytest

from repro.core.profileset import ProfileSet
from repro.service.client import ServiceClient, ServiceError, parse_endpoint
from repro.service.protocol import (MAGIC, FrameType, decode_retry_after,
                                    encode_push_seq, recv_frame, send_frame)
from repro.service.server import ProfileServer, ProfileService, ServiceConfig


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


def pset(samples):
    return ProfileSet.from_operation_latencies(samples)


STEADY = {"read": [100.0] * 100}


@pytest.fixture
def service():
    clock = FakeClock()
    svc = ProfileService(
        ServiceConfig(segment_seconds=5.0, retention=16,
                      baseline_segments=4, threshold=0.5, min_ops=10),
        clock=clock)
    svc.test_clock = clock
    return svc


@pytest.fixture
def server(service):
    srv = ProfileServer(service)
    srv.serve_in_thread()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    host, port = server.address
    with ServiceClient(host, port) as c:
        yield c


class TestProfileService:
    def test_ingest_and_snapshot(self, service):
        service.ingest_payload(pset(STEADY).to_bytes())
        snap = service.snapshot()
        assert snap["read"].total_ops == 100

    def test_corrupt_payload_counted_and_rejected(self, service):
        with pytest.raises(ValueError):
            service.ingest_payload(b"not a profile")
        assert service.ingest_errors == 1
        assert service.ingest_requests == 0

    def test_alert_flow_across_segments(self, service):
        service.ingest_payload(pset(STEADY).to_bytes())
        service.test_clock.now = 6.0
        service.ingest_payload(pset({"read": [500.0] * 100}).to_bytes())
        service.test_clock.now = 12.0
        service.tick()
        cursor, alerts = service.alerts_since(0)
        assert cursor == len(alerts) > 0
        assert alerts[0].operation == "read"
        # Cursor semantics: nothing new when polling from the end.
        cursor2, fresh = service.alerts_since(cursor)
        assert cursor2 == cursor
        assert fresh == []

    def test_metrics_text(self, service):
        service.ingest_payload(pset(STEADY).to_bytes())
        text = service.metrics_text()
        assert "osprof_ingest_requests_total 1" in text
        assert "osprof_ingest_ops_total 100" in text
        assert "osprof_segment_seconds 5" in text
        assert "osprof_ingest_seconds_sum" in text

    def test_alert_log_bounded(self):
        clock = FakeClock()
        svc = ProfileService(
            ServiceConfig(segment_seconds=1.0, retention=4,
                          baseline_segments=1, threshold=0.1, min_ops=10,
                          max_alerts=3),
            clock=clock)
        for i in range(8):
            latency = 100.0 * (4 ** i % 997 + 1)
            svc.ingest_payload(
                pset({"read": [latency] * 50}).to_bytes())
            clock.now += 1.0
        svc.tick()
        cursor, alerts = svc.alerts_since(0)
        assert len(alerts) <= 3
        # Absolute positions survive trimming.
        assert cursor >= len(alerts)


class TestTcpFrontEnd:
    def test_push_metrics_snapshot_alerts(self, client, service):
        status = client.push(pset(STEADY))
        assert "100 ops" in status
        service.test_clock.now = 6.0
        client.push(pset({"read": [500.0] * 100}))
        service.test_clock.now = 12.0
        cursor, alerts = client.alerts(0)
        assert [a.operation for a in alerts] == ["read"]
        assert "osprof_ingest_requests_total 2" in client.metrics()
        snap = client.snapshot()
        assert snap["read"].total_ops == 200

    def test_corrupt_push_gets_error_frame_and_connection_survives(
            self, client):
        with pytest.raises(ServiceError):
            client.push_payload(b"OSPROFB1garbage")
        # Same connection still works.
        assert "ops" in client.push(pset(STEADY))

    def test_unknown_frame_type_reports_error(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            send_frame(sock, 0x5A, b"")
            ftype, payload = recv_frame(sock)
            assert ftype == FrameType.ERROR
            assert "unsupported" in payload.decode()

    def test_bad_magic_drops_connection(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GARBAGE->" * 3)
            assert sock.recv(1024) == b""  # server hung up

    def test_port_zero_picks_a_real_port(self, server):
        assert server.address[1] > 0


class TestSequencedIngest:
    def test_new_sequences_merge(self, service):
        payload = pset(STEADY).to_bytes()
        status, merged = service.ingest_sequenced("c1", 1, payload)
        assert merged and "seq 1" in status
        assert service.snapshot()["read"].total_ops == 100

    def test_replay_acknowledged_without_double_merge(self, service):
        payload = pset(STEADY).to_bytes()
        service.ingest_sequenced("c1", 1, payload)
        status, merged = service.ingest_sequenced("c1", 1, payload)
        assert not merged and "duplicate" in status
        assert service.snapshot()["read"].total_ops == 100
        assert service.ingest_duplicates == 1

    def test_clients_have_independent_sequences(self, service):
        payload = pset(STEADY).to_bytes()
        assert service.ingest_sequenced("a", 1, payload)[1]
        assert service.ingest_sequenced("b", 1, payload)[1]
        assert service.snapshot()["read"].total_ops == 200

    def test_rejected_payload_leaves_sequence_retryable(self, service):
        with pytest.raises(ValueError):
            service.ingest_sequenced("c1", 1, b"garbage")
        status, merged = service.ingest_sequenced(
            "c1", 1, pset(STEADY).to_bytes())
        assert merged and "seq 1" in status

    def test_degradation_metrics_exposed(self, service):
        service.ingest_sequenced("c1", 1, pset(STEADY).to_bytes())
        service.ingest_sequenced("c1", 1, pset(STEADY).to_bytes())
        text = service.metrics_text()
        assert "osprof_ingest_duplicates_total 1" in text
        assert "osprof_backpressure_total 0" in text
        assert "osprof_frames_oversize_total 0" in text
        assert "osprof_read_timeouts_total 0" in text
        assert "osprof_push_clients 1" in text


class TestHardening:
    def test_push_seq_over_tcp_dedups(self, client, service):
        blob = encode_push_seq("c9", 1, pset(STEADY).to_bytes())
        for _ in range(2):
            send_frame(client._sock, FrameType.PUSH_SEQ, blob)
            ftype, payload = recv_frame(client._sock)
            assert ftype == FrameType.OK
        assert service.ingest_duplicates == 1
        assert service.snapshot()["read"].total_ops == 100

    def test_corrupt_push_seq_reports_bad_payload(self, client):
        blob = encode_push_seq("c9", 1, b"not a profile")
        send_frame(client._sock, FrameType.PUSH_SEQ, blob)
        ftype, payload = recv_frame(client._sock)
        assert ftype == FrameType.ERROR
        assert payload.startswith(b"bad-payload:")

    def test_backpressure_sends_retry_after(self, server, service):
        held = 0
        while service.try_acquire_ingest_slot():
            held += 1
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_frame(sock, FrameType.PUSH, pset(STEADY).to_bytes())
                ftype, payload = recv_frame(sock)
                assert ftype == FrameType.RETRY_AFTER
                assert decode_retry_after(payload) > 0
        finally:
            for _ in range(held):
                service.release_ingest_slot()
        assert service.backpressure_rejections == 1

    def test_oversize_frame_rejected_and_counted(self, service):
        server = ProfileServer(ProfileService(ServiceConfig(
            max_frame_bytes=1024)))
        server.serve_in_thread()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                # Header only: the server must reject from the declared
                # length without waiting for payload bytes.
                sock.sendall(MAGIC + struct.pack("<BI", FrameType.PUSH,
                                                 1 << 20))
                ftype, payload = recv_frame(sock)
                assert ftype == FrameType.ERROR
                assert b"limit" in payload
                assert sock.recv(1024) == b""  # connection dropped
            assert server.service.frames_oversize == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_idle_connection_times_out_and_is_counted(self):
        server = ProfileServer(ProfileService(ServiceConfig(
            read_timeout=0.05)))
        server.serve_in_thread()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(5.0)
                assert sock.recv(1024) == b""  # server reclaimed it
            deadline = time.monotonic() + 5.0
            while (server.service.read_timeouts == 0
                    and time.monotonic() < deadline):
                time.sleep(0.01)
            assert server.service.read_timeouts == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_rejects_nonpositive_max_pending(self):
        with pytest.raises(ValueError):
            ProfileService(ServiceConfig(max_pending=0))


class TestGracefulDrain:
    def test_drain_idle_server_is_immediate(self, service):
        server = ProfileServer(service)
        server.serve_in_thread()
        assert server.drain(timeout=5.0)
        assert server.active_connections == 0
        server.server_close()

    def test_drain_waits_for_inflight_connection(self, service):
        server = ProfileServer(service)
        server.serve_in_thread()
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        deadline = time.monotonic() + 5.0
        while (server.active_connections == 0
                and time.monotonic() < deadline):
            time.sleep(0.01)
        assert server.active_connections == 1
        assert not server.drain(timeout=0.05)  # peer still connected
        sock.close()
        deadline = time.monotonic() + 5.0
        while (server.active_connections > 0
                and time.monotonic() < deadline):
            time.sleep(0.01)
        assert server.active_connections == 0
        server.server_close()


class TestParseEndpoint:
    def test_parses(self):
        assert parse_endpoint("127.0.0.1:7461") == ("127.0.0.1", 7461)

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError):
            parse_endpoint("localhost")

    def test_rejects_non_integer_port(self):
        with pytest.raises(ValueError):
            parse_endpoint("host:http")


class TestWarehouseIntegration:
    """serve --db: closed segments flush durably, restarts seed history."""

    def build(self, tmp_path, **overrides):
        from repro.warehouse import Warehouse
        config = dict(segment_seconds=5.0, retention=4,
                      baseline_segments=3, threshold=0.5, min_ops=10)
        config.update(overrides)
        clock = FakeClock()
        svc = ProfileService(ServiceConfig(**config), clock=clock,
                             warehouse=Warehouse(tmp_path / "db"),
                             warehouse_source="svc")
        svc.test_clock = clock
        return svc

    def test_closed_segments_flush_as_consecutive_epochs(self, tmp_path):
        svc = self.build(tmp_path)
        for i in range(3):
            svc.ingest_payload(pset({"read": [100.0 + i] * 20}).to_bytes())
            svc.test_clock.now += 5.0
        svc.tick()
        wh = svc.warehouse
        assert wh.segments_total == 3
        assert [m.epoch for m in wh.segments("svc")] == [0, 1, 2]
        assert wh.query("svc")["read"].total_ops == 60

    def test_eviction_recheck_never_double_ingests(self, tmp_path):
        svc = self.build(tmp_path, retention=2)
        for i in range(8):
            svc.ingest_payload(pset({"read": [100.0] * 20}).to_bytes())
            svc.test_clock.now += 5.0
        svc.tick()
        # Every closed segment landed exactly once, eviction re-checks
        # included.
        assert svc.warehouse.segments_total == 8
        assert svc.warehouse.query("svc")["read"].total_ops == 160

    def test_restart_seeds_baseline_and_continues_epochs(self, tmp_path):
        svc = self.build(tmp_path)
        for _ in range(4):
            svc.ingest_payload(pset(STEADY).to_bytes())
            svc.test_clock.now += 5.0
        svc.tick()

        restarted = self.build(tmp_path)
        assert restarted.baseline_seeded == 3  # baseline_segments
        # New segments append after stored history instead of epoch 0.
        restarted.ingest_payload(pset(STEADY).to_bytes())
        restarted.test_clock.now += 5.0
        restarted.tick()
        epochs = [m.epoch for m in restarted.warehouse.segments("svc")]
        assert epochs == [0, 1, 2, 3, 4]

    def test_restarted_service_alerts_against_stored_history(self, tmp_path):
        svc = self.build(tmp_path)
        for _ in range(4):
            svc.ingest_payload(pset(STEADY).to_bytes())
            svc.test_clock.now += 5.0
        svc.tick()

        restarted = self.build(tmp_path)
        # The very first segment after the restart is judged against
        # real history: a 5x latency shift alerts immediately.
        restarted.ingest_payload(pset({"read": [500.0] * 100}).to_bytes())
        restarted.test_clock.now += 5.0
        restarted.tick()
        _, alerts = restarted.alerts_since(0)
        assert any(a.operation == "read" for a in alerts)

    def test_flush_failure_is_counted_not_fatal(self, tmp_path):
        class BrokenWarehouse:
            segments_total = 0
            compactions_total = 0
            gc_evictions_total = 0

            class index:
                @staticmethod
                def next_epoch(source):
                    return 0

            def recent_psets(self, source, count):
                return []

            def ingest(self, source, pset, epoch=None):
                raise OSError("disk full")

        clock = FakeClock()
        svc = ProfileService(
            ServiceConfig(segment_seconds=5.0, retention=4,
                          baseline_segments=3, min_ops=10),
            clock=clock, warehouse=BrokenWarehouse(),
            warehouse_source="svc")
        svc.ingest_payload(pset(STEADY).to_bytes())
        clock.now += 5.0
        svc.tick()  # must not raise
        assert svc.warehouse_flush_errors == 1
        assert "osprof_warehouse_flush_errors_total 1" in svc.metrics_text()

    def test_metrics_expose_warehouse_counters(self, tmp_path):
        svc = self.build(tmp_path)
        svc.ingest_payload(pset(STEADY).to_bytes())
        svc.test_clock.now += 5.0
        svc.tick()
        text = svc.metrics_text()
        assert "osprof_warehouse_segments_total 1" in text
        assert "osprof_warehouse_compactions_total 0" in text
        assert "osprof_warehouse_gc_evictions_total 0" in text
        assert "osprof_warehouse_flush_errors_total 0" in text

    def test_metrics_present_without_warehouse(self, service):
        # The counters exist (at zero) even when serve has no --db, so
        # scrapers never see a metric appear and disappear.
        text = service.metrics_text()
        assert "osprof_warehouse_segments_total 0" in text
        assert "osprof_warehouse_compactions_total 0" in text
        assert "osprof_warehouse_gc_evictions_total 0" in text

"""Tests for the instrumented SCSI driver layer."""

import pytest

from repro.disk.device import Disk
from repro.disk.driver import ScsiDriver
from repro.sim.scheduler import Kernel


def make_driver():
    k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
    disk = Disk(k)
    return k, ScsiDriver(k, disk)


class TestDriverProfiling:
    def test_sync_read_profiled(self):
        k, driver = make_driver()

        def body(proc):
            yield from driver.read(123)

        p = k.spawn(body, "p")
        k.run_until_done([p])
        pset = driver.profile_set()
        assert pset["disk_read"].total_ops == 1
        assert pset["disk_read"].total_latency > 0

    def test_async_write_profiled_at_completion(self):
        # The whole point of the driver layer (§4): writes return
        # immediately, yet their I/O time is still captured.
        k, driver = make_driver()
        driver.submit_write(55)
        assert driver.profile_set().total_ops() == 0  # not yet complete
        k.run(max_events=100)
        pset = driver.profile_set()
        assert pset["disk_write"].total_ops == 1

    def test_read_and_write_separate_operations(self):
        k, driver = make_driver()

        def body(proc):
            yield from driver.read(1)
            yield from driver.write(2)

        p = k.spawn(body, "p")
        k.run_until_done([p])
        pset = driver.profile_set()
        assert pset["disk_read"].total_ops == 1
        assert pset["disk_write"].total_ops == 1

    def test_latency_includes_queueing(self):
        k, driver = make_driver()
        # Saturate the disk, then submit one more.
        for i in range(10):
            driver.submit_read(i * 500)
        last = driver.submit_read(5000)
        k.run(max_events=5000)
        pset = driver.profile_set()
        assert pset["disk_read"].total_ops == 11
        # The queued request's recorded latency spans its queue wait.
        assert last.latency > (last.completed_at - last.started_at)

    def test_checksum_consistency(self):
        k, driver = make_driver()
        for i in range(20):
            driver.submit_read(i * 64)
        k.run(max_events=5000)
        assert not driver.profile_set().verify_checksums()

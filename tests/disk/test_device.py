"""Tests for the disk device: queueing, timing, completions."""

import pytest

from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.scheduler import Kernel


def make_disk(**kwargs):
    k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
    disk = Disk(k, **kwargs)
    return k, disk


class TestSubmission:
    def test_synchronous_read_completes(self):
        k, disk = make_disk()

        def body(proc):
            request = yield from disk.read(100)
            return request

        p = k.spawn(body, "p")
        k.run_until_done([p])
        request = p.exit_value
        assert request.completed_at > request.submitted_at
        assert disk.reads == 1

    def test_fire_and_forget_write(self):
        k, disk = make_disk()
        request = disk.submit(50, is_write=True)
        k.run(max_events=100)
        assert request.completed_at > 0
        assert disk.writes == 1

    def test_invalid_block_rejected(self):
        k, disk = make_disk()
        with pytest.raises(ValueError):
            disk.submit(10**9)

    def test_wait_on_completed_request(self):
        k, disk = make_disk()
        request = disk.submit(10)
        k.run(max_events=100)

        def body(proc):
            r = yield from disk.wait(request)
            return r

        p = k.spawn(body, "p")
        k.run_until_done([p])
        assert p.exit_value is request


class TestServiceTiming:
    def test_cache_hit_much_faster_than_media(self):
        k, disk = make_disk()
        r1 = disk.submit(100)   # cold: media access
        k.run(max_events=100)
        r2 = disk.submit(101)   # same track: segment cache hit
        k.run(max_events=100)
        assert r2.cache_hit
        assert not r1.cache_hit
        assert (r2.completed_at - r2.started_at) < \
            (r1.completed_at - r1.started_at) / 3

    def test_writes_never_cache_hits(self):
        k, disk = make_disk()
        disk.submit(100)
        k.run(max_events=100)
        w = disk.submit(100, is_write=True)
        k.run(max_events=100)
        assert not w.cache_hit

    def test_seek_distance_raises_latency(self):
        k, disk = make_disk(cache_segments=0)
        near = disk.submit(0)
        k.run(max_events=50)
        # Averages over rotational randomness.
        far_latencies = []
        near_latencies = []
        for i in range(12):
            r = disk.submit(disk.geometry.num_blocks - 1 - i)
            k.run(max_events=50)
            far_latencies.append(r.completed_at - r.started_at)
            r = disk.submit(disk.geometry.num_blocks - 20 - i)
            k.run(max_events=50)
            near_latencies.append(r.completed_at - r.started_at)
        # A full-stroke seek back and forth dominates; same-area reads
        # pay almost no seek.
        assert far_latencies[0] > near_latencies[-1]

    def test_busy_disk_queues_requests(self):
        k, disk = make_disk()
        requests = [disk.submit(i * 1000) for i in range(5)]
        assert disk.queue_depth() == 5
        k.run(max_events=1000)
        assert all(r.completed_at > 0 for r in requests)
        assert disk.requests_served == 5


class TestElevator:
    def test_elevator_picks_nearest_track(self):
        k, disk = make_disk(elevator=True)
        # Busy with block 0; queue far and near.
        disk.submit(0)
        far = disk.submit(disk.geometry.num_blocks - 1)
        near = disk.submit(5)
        k.run(max_events=1000)
        assert near.completed_at < far.completed_at

    def test_fifo_order_without_elevator(self):
        k, disk = make_disk(elevator=False)
        disk.submit(0)
        far = disk.submit(disk.geometry.num_blocks - 1)
        near = disk.submit(5)
        k.run(max_events=1000)
        assert far.completed_at < near.completed_at


class TestCompletionListeners:
    def test_listener_called_per_request(self):
        k, disk = make_disk()
        seen = []
        disk.on_complete.append(lambda r: seen.append(r.block))
        disk.submit(1)
        disk.submit(2)
        k.run(max_events=1000)
        assert sorted(seen) == [1, 2]

    def test_latency_property(self):
        k, disk = make_disk()
        r = disk.submit(10)
        k.run(max_events=100)
        assert r.latency == pytest.approx(
            r.completed_at - r.submitted_at)

"""Tests for the drive's segment (readahead) cache."""

import pytest

from repro.disk.cache import SegmentCache


class TestSegmentCache:
    def test_miss_then_hit(self):
        cache = SegmentCache(segments=2)
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)  # evicts 1
        assert not cache.resident(1)
        assert cache.resident(2)
        assert cache.resident(3)

    def test_lookup_refreshes_lru(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)   # 1 most recent
        cache.fill(3)     # evicts 2
        assert cache.resident(1)
        assert not cache.resident(2)

    def test_fill_existing_refreshes(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(1)
        cache.fill(3)  # evicts 2, not 1
        assert cache.resident(1)

    def test_zero_capacity_never_caches(self):
        cache = SegmentCache(segments=0)
        cache.fill(1)
        assert not cache.lookup(1)

    def test_invalidate(self):
        cache = SegmentCache(segments=4)
        cache.fill(1)
        cache.fill(2)
        cache.invalidate()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = SegmentCache(segments=4)
        assert cache.hit_rate() == 0.0
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SegmentCache(segments=-1)

"""Tests for the drive's segment (readahead) cache."""

import pytest

from repro.disk.cache import SegmentCache
from repro.disk.device import Disk
from repro.sim.scheduler import Kernel


class TestSegmentCache:
    def test_miss_then_hit(self):
        cache = SegmentCache(segments=2)
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)  # evicts 1
        assert not cache.resident(1)
        assert cache.resident(2)
        assert cache.resident(3)

    def test_lookup_refreshes_lru(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)   # 1 most recent
        cache.fill(3)     # evicts 2
        assert cache.resident(1)
        assert not cache.resident(2)

    def test_fill_existing_refreshes(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(1)
        cache.fill(3)  # evicts 2, not 1
        assert cache.resident(1)

    def test_zero_capacity_never_caches(self):
        cache = SegmentCache(segments=0)
        cache.fill(1)
        assert not cache.lookup(1)

    def test_invalidate(self):
        cache = SegmentCache(segments=4)
        cache.fill(1)
        cache.fill(2)
        cache.invalidate()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = SegmentCache(segments=4)
        assert cache.hit_rate() == 0.0
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SegmentCache(segments=-1)


class TestEvictionOrder:
    """The LRU order is part of the model: byte-identity runs depend on
    exactly which track leaves when the buffer is full."""

    def test_cold_fills_evict_in_insertion_order(self):
        cache = SegmentCache(segments=3)
        for track in (1, 2, 3, 4, 5):
            cache.fill(track)
        survivors = [t for t in (1, 2, 3, 4, 5) if cache.resident(t)]
        assert survivors == [3, 4, 5]

    def test_interleaved_lookups_reorder_eviction(self):
        cache = SegmentCache(segments=3)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)
        cache.lookup(1)   # order now 2, 3, 1
        cache.lookup(2)   # order now 3, 1, 2
        cache.fill(4)     # evicts 3
        cache.fill(5)     # evicts 1
        assert not cache.resident(3)
        assert not cache.resident(1)
        assert cache.resident(2)
        assert cache.resident(4)
        assert cache.resident(5)

    def test_missed_lookup_does_not_disturb_order(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(99)  # miss: must not touch residency or order
        cache.fill(3)     # still evicts 1
        assert not cache.resident(1)
        assert cache.resident(2)
        assert len(cache) == 2


class TestInvalidate:
    def test_invalidate_preserves_statistics(self):
        cache = SegmentCache(segments=4)
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        cache.invalidate()
        # The barrier drops data, not accounting.
        assert cache.hits == 1
        assert cache.misses == 1
        assert not cache.resident(1)

    def test_refill_after_invalidate_starts_fresh(self):
        cache = SegmentCache(segments=2)
        cache.fill(1)
        cache.fill(2)
        cache.invalidate()
        cache.fill(3)
        cache.fill(4)
        cache.fill(5)  # evicts 3: old entries play no part in LRU order
        assert not cache.resident(3)
        assert cache.resident(4)
        assert cache.resident(5)


def make_disk(**kwargs):
    k = Kernel(num_cpus=1, tsc_skew_seconds=0.0)
    return k, Disk(k, **kwargs)


class TestReadaheadFill:
    """The fill path through the spindle model: what lands in the
    segment buffer after each kind of media access."""

    def test_read_miss_fills_the_whole_track(self):
        k, disk = make_disk()
        per_track = disk.geometry.blocks_per_track
        disk.submit(0)
        k.run(max_events=100)
        assert disk.cache.resident(0)
        # Any other block of track 0 now hits; track 1 stays cold.
        neighbor = disk.submit(per_track - 1)
        k.run(max_events=100)
        assert neighbor.cache_hit
        beyond = disk.submit(per_track)
        k.run(max_events=100)
        assert not beyond.cache_hit

    def test_write_fills_its_track_for_later_reads(self):
        # The head read the track to reach the sector; the segment
        # buffer keeps it, so a write primes readahead for reads.
        k, disk = make_disk()
        disk.submit(100, is_write=True)
        k.run(max_events=100)
        assert disk.cache.resident(disk.geometry.track_of(100))
        read = disk.submit(101)
        k.run(max_events=100)
        assert read.cache_hit

    def test_failed_media_access_does_not_fill(self):
        # Every attempt fails (error_rate ~1, no retries): the sector
        # never came off the platter, so nothing enters the buffer.
        k, disk = make_disk(error_rate=0.999, max_retries=0)
        request = disk.submit(100)
        k.run(max_events=100)
        assert request.failed
        assert not disk.cache.resident(disk.geometry.track_of(100))
        assert len(disk.cache) == 0

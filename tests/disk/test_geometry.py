"""Tests for disk geometry and mechanical timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import BLOCK_SIZE, DiskGeometry
from repro.sim.engine import seconds
from repro.sim.rng import SimRandom


class TestMapping:
    def test_track_of_blocks(self):
        geo = DiskGeometry(num_blocks=1000, blocks_per_track=100)
        assert geo.track_of(0) == 0
        assert geo.track_of(99) == 0
        assert geo.track_of(100) == 1
        assert geo.track_of(999) == 9

    def test_out_of_range_rejected(self):
        geo = DiskGeometry(num_blocks=100, blocks_per_track=10)
        with pytest.raises(ValueError):
            geo.track_of(100)
        with pytest.raises(ValueError):
            geo.track_of(-1)

    def test_track_span(self):
        geo = DiskGeometry(num_blocks=95, blocks_per_track=10)
        assert list(geo.track_span(0)) == list(range(10))
        assert list(geo.track_span(9)) == list(range(90, 95))


class TestSeekTimes:
    def test_same_track_is_free(self):
        geo = DiskGeometry()
        assert geo.seek_time(5, 5) == 0.0

    def test_adjacent_track_costs_track_seek(self):
        geo = DiskGeometry()
        assert geo.seek_time(5, 6) == pytest.approx(geo.track_seek)

    def test_full_stroke_costs_full_seek(self):
        geo = DiskGeometry()
        assert geo.seek_time(0, geo.num_tracks - 1) == pytest.approx(
            geo.full_seek)

    def test_symmetric(self):
        geo = DiskGeometry()
        assert geo.seek_time(10, 500) == geo.seek_time(500, 10)

    @given(st.integers(min_value=0, max_value=2047),
           st.integers(min_value=0, max_value=2047))
    @settings(max_examples=50)
    def test_bounded_and_monotone(self, a, b):
        geo = DiskGeometry()
        t = geo.seek_time(a, b)
        assert 0 <= t <= geo.full_seek
        if a != b:
            assert t >= geo.track_seek

    def test_paper_characteristic_times(self):
        geo = DiskGeometry()
        assert geo.track_seek == pytest.approx(seconds(0.3e-3))
        assert geo.full_seek == pytest.approx(seconds(8e-3))
        assert geo.rotation == pytest.approx(seconds(4e-3))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskGeometry(num_blocks=0)
        with pytest.raises(ValueError):
            DiskGeometry(track_seek=10, full_seek=5)


class TestRotationAndTransfer:
    def test_rotational_delay_within_one_rotation(self):
        geo = DiskGeometry()
        rng = SimRandom(1)
        for _ in range(100):
            delay = geo.rotational_delay(rng)
            assert 0 <= delay < geo.rotation

    def test_transfer_time_proportional(self):
        geo = DiskGeometry()
        assert geo.transfer_time(2) == pytest.approx(
            2 * geo.transfer_time(1))
        with pytest.raises(ValueError):
            geo.transfer_time(0)

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 4096
